// Analytic performance-model tests: because the simulator is deterministic,
// measured virtual times must equal the closed-form LogGP composition
// *exactly* (integer picoseconds). These tests pin the cost model of every
// protocol layer — any accidental double-charge or missing term fails them.
#include <gtest/gtest.h>

#include <vector>

#include "core/world.hpp"

using namespace narma;

namespace {

Time wire(const net::TransportTiming& tt, std::size_t bytes) {
  return tt.g +
         static_cast<Time>(tt.G_ps_per_byte * static_cast<double>(bytes)) +
         tt.L;
}

}  // namespace

class NaLatencyModel : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NaLatencyModel, NotifiedPutMatchesClosedForm) {
  const std::size_t bytes = GetParam();
  WorldParams wp;
  World world(2, wp);
  Time issue = 0, complete = 0;
  world.run([&](Rank& self) {
    auto win = self.win_allocate(bytes + 8, 1);
    std::vector<std::byte> src(bytes);
    auto req = self.na().notify_init(*win, na::MatchSpec{0, 1}, 1);
    self.barrier();
    if (self.id() == 0) {
      issue = self.now();
      self.na().put_notify(*win, na::as_bytes(src.data(), bytes), 1, 0, 1);
    } else {
      self.na().start(req);
      self.na().wait(req);
      complete = self.now();
    }
    self.barrier();
  });

  // t_na + wire(transport(bytes)) + cq_poll + o_r, exactly.
  const net::Transport tr =
      bytes >= wp.fabric.aries.fma_bte_threshold ? net::Transport::kBte
                                           : net::Transport::kFma;
  const Time expected = wp.na.t_na + wire(wp.fabric.timing(tr), bytes) +
                        wp.na.cq_poll + wp.na.o_r;
  EXPECT_EQ(complete - issue, expected) << "bytes=" << bytes;
}

INSTANTIATE_TEST_SUITE_P(Sizes, NaLatencyModel,
                         ::testing::Values(0u, 8u, 256u, 4095u, 4096u,
                                           65536u, 1048576u));

TEST(LatencyModel, FlushCostsAckLatency) {
  WorldParams wp;
  World world(2, wp);
  Time span = 0;
  world.run([&](Rank& self) {
    auto win = self.win_allocate(64, 1);
    self.barrier();
    if (self.id() == 0) {
      double v = 1;
      const Time t0 = self.now();
      win->put(&v, 8, 1, 0);
      win->flush(1);
      span = self.now() - t0;
    }
    self.barrier();
  });
  // o_put + wire + ack_L (FMA for 8 bytes). The flush call overhead is
  // charged before blocking and is absorbed into the wait for the ack,
  // which arrives at an absolute time — charges made while waiting for a
  // later event never add to the end time.
  const Time expected =
      wp.rma.o_put + wire(wp.fabric.aries.fma, 8) + wp.fabric.aries.fma.ack_L;
  EXPECT_EQ(span, expected);
}

TEST(LatencyModel, GetIsRequestPlusResponse) {
  WorldParams wp;
  World world(2, wp);
  Time span = 0;
  const std::size_t bytes = 512;
  world.run([&](Rank& self) {
    auto win = self.win_allocate(bytes, 1);
    self.barrier();
    if (self.id() == 0) {
      std::vector<std::byte> dst(bytes);
      const Time t0 = self.now();
      win->get(dst.data(), bytes, 1, 0);
      win->flush(1);
      span = self.now() - t0;
    }
    self.barrier();
  });
  // o_put + request wire (0 B) + response wire (bytes); the flush overhead
  // is absorbed into the wait for the response (see FlushCostsAckLatency).
  const Time expected = wp.rma.o_put + wire(wp.fabric.aries.fma, 0) +
                        wire(wp.fabric.aries.fma, bytes);
  EXPECT_EQ(span, expected);
}

TEST(LatencyModel, EagerSendMatchesClosedForm) {
  WorldParams wp;
  World world(2, wp);
  Time issue = 0, complete = 0;
  const std::size_t bytes = 1024;
  world.run([&](Rank& self) {
    std::vector<std::byte> buf(bytes);
    self.barrier();
    if (self.id() == 0) {
      issue = self.now();
      self.send(buf.data(), bytes, 1, 1);
    } else {
      self.recv(buf.data(), bytes, 0, 1);
      complete = self.now();
    }
    self.barrier();
  });
  const auto copy = [&](std::size_t b) {
    return static_cast<Time>(wp.mp.copy_ps_per_byte *
                             static_cast<double>(b));
  };
  // o_send + sender copy + wire(ctrl hdr + payload) + o_recv_post (receiver
  // posts first) + o_match + receiver copy.
  const Time expected =
      wp.mp.o_send + copy(bytes) +
      wire(wp.fabric.aries.fma, wp.fabric.ctrl_msg_bytes + bytes) +
      wp.mp.o_match + copy(bytes);
  // The receiver also pays o_recv_post before blocking; it overlaps the
  // wire time if the message is still in flight, so the one-way time seen
  // from the sender's issue excludes it. Exact equality:
  EXPECT_EQ(complete - issue, expected);
}

TEST(LatencyModel, ShmInlineNotifiedPut) {
  WorldParams wp = WorldParams::single_node(2);
  World world(2, wp);
  Time issue = 0, complete = 0;
  world.run([&](Rank& self) {
    auto win = self.win_allocate(64, 1);
    double v = 1;
    auto req = self.na().notify_init(*win, na::MatchSpec{0, 1}, 1);
    self.barrier();
    if (self.id() == 0) {
      issue = self.now();
      self.na().put_notify(*win, na::as_bytes(&v, 8), 1, 0, 1);
    } else {
      self.na().start(req);
      self.na().wait(req);
      complete = self.now();
    }
    self.barrier();
  });
  // t_na + one cache-line shm transfer + cq_poll + inline commit + o_r.
  const Time expected = wp.na.t_na + wire(wp.fabric.shm.timing, 64) +
                        wp.na.cq_poll + wp.na.inline_commit + wp.na.o_r;
  EXPECT_EQ(complete - issue, expected);
}

TEST(LatencyModel, BackToBackPutsSerializeOnChannel) {
  // Two puts to the same target: the second's delivery is pushed behind the
  // first's injection (g + G*bytes), verifying channel serialization.
  WorldParams wp;
  World world(2, wp);
  const std::size_t bytes = 4096;  // BTE
  Time second_arrival = 0, issue = 0;
  world.run([&](Rank& self) {
    auto win = self.win_allocate(2 * bytes, 1);
    std::vector<std::byte> src(bytes);
    auto req = self.na().notify_init(*win, na::MatchSpec{0, 1}, 2);
    self.barrier();
    if (self.id() == 0) {
      issue = self.now();
      self.na().put_notify(*win, na::as_bytes(src.data(), bytes), 1, 0, 1);
      self.na().put_notify(*win, na::as_bytes(src.data(), bytes), 1, bytes, 1);
    } else {
      self.na().start(req);
      self.na().wait(req);
      second_arrival = self.now();
    }
    self.barrier();
  });
  const auto& tt = wp.fabric.aries.bte;
  const Time serialization =
      tt.g + static_cast<Time>(tt.G_ps_per_byte * static_cast<double>(bytes));
  // The first put injects at issue + t_na and occupies the channel for
  // `serialization`; the second (issued t_na later, before the channel
  // frees) injects right behind it and arrives L after its injection ends.
  // The receiver popped the first CQE while waiting (that poll cost is
  // absorbed into the wait for the second arrival) and pays one poll plus
  // o_r after the completing arrival.
  const Time expected = wp.na.t_na + 2 * serialization + tt.L +
                        wp.na.cq_poll + wp.na.o_r;
  EXPECT_EQ(second_arrival - issue, expected);
}
