// Verifies the paper's Figure 2 transaction counts: the number of network
// transactions each producer-consumer protocol needs to move one message
// and synchronize, measured with the fabric's traffic counters.
//
//   eager message passing          — 1 transaction (header+payload together)
//   rendezvous message passing     — 3 on the critical path (RTS, CTS, DATA)
//   put + flush + flag (one-sided) — data + ack + separate synchronization
//   notified access                — exactly 1 data transfer, 0 control
#include <gtest/gtest.h>

#include <vector>

#include "core/world.hpp"

using namespace narma;

namespace {

/// Runs one producer-consumer exchange of `bytes` and returns the fabric
/// counters accumulated during it.
template <class Fn>
net::FabricCounters measure(std::size_t /*bytes*/, WorldParams wp, Fn fn) {
  World world(2, wp);
  net::FabricCounters snap;
  // Message-free phase flags: counters increment at issue time, so polling
  // shared flags (no traffic) brackets exactly fn's transactions.
  std::vector<char> ready(2, 0), done(2, 0);
  char reset_done = 0, snap_done = 0;
  world.run([&](Rank& self) {
    auto win = self.win_allocate(1 << 17, 1);
    auto settle = [&](std::vector<char>& flags) {
      flags[static_cast<std::size_t>(self.id())] = 1;
      while (!(flags[0] && flags[1]))
        self.ctx().yield_until(self.now() + us(1), "quiesce");
    };
    settle(ready);
    if (self.id() == 0) {
      self.world().fabric().reset_counters();
      reset_done = 1;
    } else {
      while (!reset_done)
        self.ctx().yield_until(self.now() + us(1), "await-reset");
    }
    fn(self, *win);
    settle(done);
    if (self.id() == 0) {
      snap = self.world().fabric().counters();
      snap_done = 1;
    } else {
      while (!snap_done)
        self.ctx().yield_until(self.now() + us(1), "await-snap");
    }
    self.barrier();
  });
  return snap;
}

}  // namespace

TEST(Fig2, EagerMessagePassingOneTransaction) {
  std::vector<char> buf(256);
  const auto c = measure(256, {}, [&](Rank& self, rma::Window&) {
    if (self.id() == 0) self.send(buf.data(), buf.size(), 1, 1);
    if (self.id() == 1) self.recv(buf.data(), buf.size(), 0, 1);
  });
  // One control transfer carrying header + payload, no RDMA data transfer.
  EXPECT_EQ(c.ctrl_transfers, 1u);
  EXPECT_EQ(c.data_transfers, 0u);
}

TEST(Fig2, RendezvousThreeTransactions) {
  const std::size_t n = 1 << 15;  // above eager threshold
  std::vector<char> buf(n);
  const auto c = measure(n, {}, [&](Rank& self, rma::Window&) {
    if (self.id() == 0) self.send(buf.data(), n, 1, 1);
    if (self.id() == 1) self.recv(buf.data(), n, 0, 1);
  });
  // Exactly the paper's three transactions: RTS, CTS, and the zero-copy
  // RDMA payload transfer.
  EXPECT_EQ(c.data_transfers, 1u);
  EXPECT_EQ(c.ctrl_transfers, 2u);  // RTS, CTS
}

TEST(Fig2, OneSidedPutNeedsSeparateSynchronization) {
  std::vector<char> buf(256);
  const auto c = measure(256, {}, [&](Rank& self, rma::Window& win) {
    if (self.id() == 0) {
      win.put(buf.data(), buf.size(), 1, 0);
      win.flush(1);
      // The consumer cannot see the flush; a separate notification message
      // is required (modeled as a zero-byte put into a flag the consumer
      // polls — the paper's Fig. 2c).
      char flag = 1;
      win.put(&flag, 1, 1, 1 << 16);
      win.flush(1);
    } else {
      auto mem = win.local<char>();
      while (mem[1 << 16] == 0)
        self.ctx().yield_until(self.now() + us(1), "flag-poll");
    }
  });
  // Two data transfers (payload + flag) and their acks: >= 3 transactions
  // on the critical path, matching Fig. 2c.
  EXPECT_EQ(c.data_transfers, 2u);
  EXPECT_GE(c.acks, 2u);
}

TEST(Fig2, NotifiedAccessSingleTransaction) {
  std::vector<char> buf(256);
  WorldParams wp;
  const auto c = measure(256, wp, [&](Rank& self, rma::Window& win) {
    if (self.id() == 0) {
      self.na().put_notify(win, na::as_bytes(buf.data(), buf.size()), 1, 0, 1);
      win.flush(1);
    } else {
      auto req = self.na().notify_init(win, na::MatchSpec{0, 1}, 1);
      self.na().start(req);
      self.na().wait(req);
    }
  });
  // The whole exchange is one data transfer; the notification rides on it.
  EXPECT_EQ(c.data_transfers, 1u);
  EXPECT_EQ(c.ctrl_transfers, 0u);
  EXPECT_EQ(c.notifications, 1u);
  EXPECT_EQ(c.responses, 0u);
}

TEST(Fig2, NotifiedGetTwoTransactionsRequestResponse) {
  std::vector<char> buf(256);
  const auto c = measure(256, {}, [&](Rank& self, rma::Window& win) {
    if (self.id() == 0) {
      self.na().get_notify(win, na::as_writable_bytes(buf.data(), buf.size()), 1, 0, 1);
      win.flush(1);
    } else {
      auto req = self.na().notify_init(win, na::MatchSpec{0, 1}, 1);
      self.na().start(req);
      self.na().wait(req);
    }
  });
  // Get is inherently request/response; the notification still needs no
  // extra message.
  EXPECT_EQ(c.data_transfers, 1u);
  EXPECT_EQ(c.responses, 1u);
  EXPECT_EQ(c.ctrl_transfers, 0u);
  EXPECT_EQ(c.notifications, 1u);
}

TEST(Fig2, LatencyOrderingMatchesThePaper) {
  // Half-round-trip comparison on small messages: NA < eager MP < one-sided
  // with explicit synchronization (Fig. 3a's ordering).
  auto one_way = [](auto fn) {
    WorldParams wp;
    World world(2, wp);
    Time t{};
    world.run([&](Rank& self) {
      auto win = self.win_allocate(4096, 1);
      self.barrier();
      const Time t0 = self.now();
      fn(self, *win);
      if (self.id() == 1) t = self.now() - t0;
    });
    return t;
  };
  std::vector<char> buf(8);

  const Time t_na = one_way([&](Rank& self, rma::Window& win) {
    if (self.id() == 0) {
      self.na().put_notify(win, na::as_bytes(buf.data(), 8), 1, 0, 1);
      win.flush(1);
    } else {
      auto req = self.na().notify_init(win, na::MatchSpec{0, 1}, 1);
      self.na().start(req);
      self.na().wait(req);
    }
  });

  const Time t_mp = one_way([&](Rank& self, rma::Window&) {
    if (self.id() == 0) self.send(buf.data(), 8, 1, 1);
    if (self.id() == 1) self.recv(buf.data(), 8, 0, 1);
  });

  const Time t_os = one_way([&](Rank& self, rma::Window& win) {
    if (self.id() == 0) {
      win.put(buf.data(), 8, 1, 0);
      win.flush(1);
      char flag = 1;
      win.put(&flag, 1, 1, 128);
      win.flush(1);
    } else {
      auto mem = win.local<char>();
      while (mem[128] == 0)
        self.ctx().yield_until(self.now() + ns(100), "flag");
    }
  });

  EXPECT_LT(t_na, t_mp);
  EXPECT_LT(t_mp, t_os);
}
