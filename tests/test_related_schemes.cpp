// Tests of the related-work notification schemes (paper Sec. VII):
// overwriting (GASPI-style) slots and counting (Split-C/LAPI-style)
// counters — correctness, and the semantic gaps the paper identifies.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/related_schemes.hpp"
#include "core/world.hpp"

using namespace narma;
using namespace narma::related;

TEST(Overwriting, ValueAndDataArriveOrdered) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(8 * sizeof(double), sizeof(double));
    OverwritingNotifier notif(self, 16);
    if (self.id() == 0) {
      double v = 4.5;
      notif.notify_put(*win, &v, sizeof(double), 1, 2, /*slot=*/5,
                       /*value=*/77);
      win->flush(1);
      notif.flush(1);
    } else {
      const auto hit = notif.wait_any_slot(0, 16);
      EXPECT_EQ(hit.slot, 5u);
      EXPECT_EQ(hit.value, 77);
      // Data committed before the slot became visible.
      EXPECT_EQ(win->local<double>()[2], 4.5);
    }
    self.barrier();
  });
}

TEST(Overwriting, SlotConsumedOnWait) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(8, 1);
    OverwritingNotifier notif(self, 4);
    if (self.id() == 0) {
      notif.notify_put(*win, nullptr, 0, 1, 0, 1, 11);
      notif.notify_put(*win, nullptr, 0, 1, 0, 2, 22);
      notif.flush(1);
    } else {
      std::set<std::int64_t> seen;
      seen.insert(notif.wait_any_slot(0, 4).value);
      seen.insert(notif.wait_any_slot(0, 4).value);
      EXPECT_EQ(seen, (std::set<std::int64_t>{11, 22}));
    }
    self.barrier();
  });
}

TEST(Overwriting, ScanCostGrowsWithSlotRange) {
  // The consumer pays one scan step per inspected slot — the storage/scan
  // cost of overwriting interfaces the paper points out.
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(8, 1);
    OverwritingNotifier notif(self, 512);
    if (self.id() == 0) {
      notif.notify_put(*win, nullptr, 0, 1, 0, /*slot=*/511, 1);
      notif.flush(1);
    } else {
      (void)notif.wait_any_slot(0, 512);
      // At least one full scan pass to reach slot 511.
      EXPECT_GE(notif.slots_scanned(), 512u);
    }
    self.barrier();
  });
}

TEST(Counting, CountsArrivalsPerCounter) {
  World world(3);
  world.run([](Rank& self) {
    auto win = self.win_allocate(16 * sizeof(double), sizeof(double));
    CountingNotifier notif(self, 4);
    if (self.id() != 0) {
      double v = self.id();
      for (int i = 0; i < 3; ++i)
        notif.signaling_put(*win, &v, sizeof(double), 0,
                            static_cast<std::uint64_t>(self.id()),
                            static_cast<std::uint32_t>(self.id()));
      win->flush(0);
    } else {
      notif.wait_count(1, 3);
      notif.wait_count(2, 3);
      EXPECT_EQ(notif.count(1), 3);
      EXPECT_EQ(notif.count(2), 3);
      EXPECT_EQ(notif.count(0), 0);
      // Counting tells how many arrived — the data is there...
      EXPECT_EQ(win->local<double>()[1], 1.0);
      EXPECT_EQ(win->local<double>()[2], 2.0);
    }
    self.barrier();
  });
}

TEST(Counting, SingleTransactionPerSignalingPut) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(8, 1);
    CountingNotifier notif(self, 1);
    self.barrier();
    if (self.id() == 0) self.world().fabric().reset_counters();
    self.barrier();
    if (self.id() == 0) {
      double v = 1;
      notif.signaling_put(*win, &v, 8, 1, 0, 0);
      win->flush(1);
    } else {
      notif.wait_count(0, 1);
    }
    self.barrier();
    // One data transfer, no control messages, no separate notification
    // message (hardware-counter model). The barrier adds ctrl traffic, so
    // only the data/notification counters are asserted.
    if (self.id() == 0) {
      const auto& c = self.world().fabric().counters();
      EXPECT_EQ(c.data_transfers, 1u);
      EXPECT_EQ(c.notifications, 0u);
    }
    self.barrier();
  });
}

TEST(Counting, ZeroByteSignal) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(8, 1);
    CountingNotifier notif(self, 2);
    if (self.id() == 0) {
      notif.signaling_put(*win, nullptr, 0, 1, 0, 1);
      win->flush(1);
    } else {
      notif.wait_count(1, 1);
      EXPECT_EQ(notif.count(1), 1);
    }
    self.barrier();
  });
}
