// Unit tests of the one-sided layer: windows, put/get, flush semantics,
// atomics, fence, and PSCW synchronization.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/world.hpp"

using namespace narma;

TEST(Rma, WindowAllocateZeroInitialized) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(64 * sizeof(double), sizeof(double));
    for (double v : win->local<double>()) EXPECT_EQ(v, 0.0);
    EXPECT_EQ(win->bytes(), 64 * sizeof(double));
  });
}

TEST(Rma, PutFlushCommitsRemotely) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(8 * sizeof(double), sizeof(double));
    if (self.id() == 0) {
      std::vector<double> v{1, 2, 3};
      win->put(v.data(), 3 * sizeof(double), 1, 2);  // disp 2 doubles
      win->flush(1);
    }
    self.barrier();
    if (self.id() == 1) {
      auto mem = win->local<double>();
      EXPECT_EQ(mem[2], 1.0);
      EXPECT_EQ(mem[3], 2.0);
      EXPECT_EQ(mem[4], 3.0);
      EXPECT_EQ(mem[0], 0.0);
    }
    self.barrier();
  });
}

TEST(Rma, GetReadsRemote) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(4 * sizeof(double), sizeof(double));
    if (self.id() == 1) {
      auto mem = win->local<double>();
      mem[0] = 42.5;
      mem[3] = -1.5;
    }
    self.barrier();
    if (self.id() == 0) {
      double a = 0, b = 0;
      win->get(&a, sizeof(double), 1, 0);
      win->get(&b, sizeof(double), 1, 3);
      win->flush(1);
      EXPECT_EQ(a, 42.5);
      EXPECT_EQ(b, -1.5);
    }
    self.barrier();
  });
}

TEST(Rma, FlushTargetsIndependently) {
  World world(3);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(double), sizeof(double));
    if (self.id() == 0) {
      double x = 1.0;
      win->put(&x, sizeof(double), 1, 0);
      win->put(&x, sizeof(double), 2, 0);
      EXPECT_FALSE(win->pending(1).all_done());
      win->flush(1);
      EXPECT_TRUE(win->pending(1).all_done());
      win->flush(2);
      EXPECT_TRUE(win->pending(2).all_done());
    }
    self.barrier();
  });
}

TEST(Rma, FenceSeparatesEpochs) {
  World world(4);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(double) *
                                     static_cast<std::size_t>(self.size()),
                                 sizeof(double));
    // Everyone puts its id+1 into slot `id` of every rank, then fences.
    const double v = self.id() + 1.0;
    for (int t = 0; t < self.size(); ++t)
      win->put(&v, sizeof(double), t, static_cast<std::uint64_t>(self.id()));
    win->fence();
    auto mem = win->local<double>();
    for (int r = 0; r < self.size(); ++r)
      EXPECT_EQ(mem[static_cast<std::size_t>(r)], r + 1.0);
    win->fence();
  });
}

TEST(Rma, FetchAddSerializesAcrossRanks) {
  World world(5);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(std::int64_t), sizeof(std::int64_t));
    std::int64_t old = -1;
    win->fetch_add_i64(0, 0, 1, &old);
    win->flush(0);
    EXPECT_GE(old, 0);
    EXPECT_LT(old, self.size());
    self.barrier();
    if (self.id() == 0) {
      EXPECT_EQ(win->local<std::int64_t>()[0], self.size());
    }
    self.barrier();
  });
}

TEST(Rma, FetchAddF64) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(double), sizeof(double));
    if (self.id() == 1) win->local<double>()[0] = 10.0;
    self.barrier();
    if (self.id() == 0) {
      double old = 0;
      win->fetch_add_f64(1, 0, 2.5, &old);
      win->flush(1);
      EXPECT_EQ(old, 10.0);
    }
    self.barrier();
    if (self.id() == 1) {
      EXPECT_EQ(win->local<double>()[0], 12.5);
    }
    self.barrier();
  });
}

TEST(Rma, CompareSwapOnlyOneWinner) {
  World world(4);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(std::int64_t), sizeof(std::int64_t));
    std::int64_t old = -1;
    // Everyone tries to claim slot 0 at rank 0 (0 -> id+1).
    win->compare_swap_i64(0, 0, 0, self.id() + 1, &old);
    win->flush(0);
    const bool won = old == 0;
    std::vector<double> wins(static_cast<std::size_t>(self.size()));
    double w = won ? 1.0 : 0.0;
    mp::allgather(self.mp(), &w, sizeof(double), wins.data());
    double total = 0;
    for (double x : wins) total += x;
    EXPECT_EQ(total, 1.0);  // exactly one winner
    self.barrier();
  });
}

TEST(Rma, PscwPairSynchronization) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(double), sizeof(double));
    std::array<int, 1> zero{0}, one{1};
    if (self.id() == 0) {
      double v = 3.5;
      win->start(one);
      win->put(&v, sizeof(double), 1, 0);
      win->complete();
    } else {
      win->post(zero);
      win->wait();
      EXPECT_EQ(win->local<double>()[0], 3.5);
    }
  });
}

TEST(Rma, PscwMultipleOrigins) {
  World world(4);
  world.run([](Rank& self) {
    auto win = self.win_allocate(4 * sizeof(double), sizeof(double));
    if (self.id() == 0) {
      std::array<int, 3> origins{1, 2, 3};
      win->post(origins);
      win->wait();
      auto mem = win->local<double>();
      EXPECT_EQ(mem[1], 1.0);
      EXPECT_EQ(mem[2], 2.0);
      EXPECT_EQ(mem[3], 3.0);
    } else {
      std::array<int, 1> target{0};
      const double v = self.id();
      win->start(target);
      win->put(&v, sizeof(double), 0, static_cast<std::uint64_t>(self.id()));
      win->complete();
    }
  });
}

TEST(Rma, PscwRepeatedEpochs) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(double), sizeof(double));
    std::array<int, 1> zero{0}, one{1};
    for (int epoch = 1; epoch <= 5; ++epoch) {
      if (self.id() == 0) {
        const double v = epoch * 1.5;
        win->start(one);
        win->put(&v, sizeof(double), 1, 0);
        win->complete();
      } else {
        win->post(zero);
        win->wait();
        EXPECT_EQ(win->local<double>()[0], epoch * 1.5);
      }
    }
  });
}

TEST(Rma, MultipleWindowsIndependent) {
  World world(2);
  world.run([](Rank& self) {
    auto w1 = self.win_allocate(sizeof(double), sizeof(double));
    auto w2 = self.win_allocate(sizeof(double), sizeof(double));
    EXPECT_NE(w1->id(), w2->id());
    if (self.id() == 0) {
      double a = 1.0, b = 2.0;
      w1->put(&a, sizeof(double), 1, 0);
      w2->put(&b, sizeof(double), 1, 0);
      w1->flush(1);
      w2->flush(1);
    }
    self.barrier();
    if (self.id() == 1) {
      EXPECT_EQ(w1->local<double>()[0], 1.0);
      EXPECT_EQ(w2->local<double>()[0], 2.0);
    }
    self.barrier();
    // Windows are destroyed collectively in reverse construction order.
    w2.reset();
    w1.reset();
  });
}

TEST(Rma, CreateOverUserMemory) {
  World world(2);
  world.run([](Rank& self) {
    std::vector<double> mem(16, static_cast<double>(self.id()));
    auto win = self.rma().create(mem.data(), mem.size() * sizeof(double),
                                 sizeof(double));
    if (self.id() == 0) {
      double v = 0;
      win->get(&v, sizeof(double), 1, 7);
      win->flush(1);
      EXPECT_EQ(v, 1.0);
    }
    self.barrier();
  });
}
