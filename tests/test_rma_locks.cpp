// Tests of passive-target locking: mutual exclusion of exclusive locks,
// reader concurrency, lock_all, and epoch completion at unlock.
#include <gtest/gtest.h>

#include <vector>

#include "core/world.hpp"

using namespace narma;

TEST(RmaLock, ExclusiveProtectsReadModifyWrite) {
  World world(6);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(double), sizeof(double));
    // Every rank increments the counter at rank 0 under an exclusive lock
    // using a plain get/put (not an atomic) — only the lock makes it safe.
    for (int round = 0; round < 3; ++round) {
      win->lock(rma::Window::LockKind::kExclusive, 0);
      double v = 0;
      win->get(&v, sizeof(double), 0, 0);
      win->flush(0);
      v += 1.0;
      win->put(&v, sizeof(double), 0, 0);
      win->unlock(0);
    }
    self.barrier();
    if (self.id() == 0) {
      EXPECT_EQ(win->local<double>()[0], 6.0 * 3);
    }
    self.barrier();
  });
}

TEST(RmaLock, SharedReadersOverlap) {
  World world(4);
  Time reader_span_sum = 0;
  world.run([&](Rank& self) {
    auto win = self.win_allocate(sizeof(double), sizeof(double));
    if (self.id() == 0) win->local<double>()[0] = 2.5;
    self.barrier();
    if (self.id() != 0) {
      win->lock(rma::Window::LockKind::kShared, 0);
      double v = 0;
      win->get(&v, sizeof(double), 0, 0);
      win->flush(0);
      EXPECT_EQ(v, 2.5);
      // Readers hold the lock together for a while: with exclusion this
      // would serialize 3 x 50us; shared locks overlap.
      self.compute(us(50));
      win->unlock(0);
    }
    self.barrier();
    if (self.id() == 1) reader_span_sum = self.now();
  });
  // If the three readers were serialized the clock would exceed 150us.
  EXPECT_LT(reader_span_sum, us(120));
}

TEST(RmaLock, ExclusiveExcludesShared) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(std::int64_t), sizeof(std::int64_t));
    if (self.id() == 0) {
      win->lock(rma::Window::LockKind::kExclusive, 1);
      self.compute(us(30));
      std::int64_t v = 7;
      win->put(&v, sizeof(v), 1, 0);
      win->unlock(1);
    } else {
      // Give rank 0 a head start, then try a shared lock: it must wait for
      // the exclusive holder and then see the committed value.
      self.ctx().yield_until(us(10), "head-start");
      win->lock(rma::Window::LockKind::kShared, 1);
      EXPECT_EQ(win->local<std::int64_t>()[0], 7);
      win->unlock(1);
    }
    self.barrier();
  });
}

TEST(RmaLock, LockAllSharedEverywhere) {
  World world(3);
  world.run([](Rank& self) {
    auto win = self.win_allocate(sizeof(double), sizeof(double));
    win->local<double>()[0] = self.id() * 10.0;
    self.barrier();
    win->lock_all();
    for (int t = 0; t < self.size(); ++t) {
      double v = -1;
      win->get(&v, sizeof(double), t, 0);
      win->flush(t);
      EXPECT_EQ(v, t * 10.0);
    }
    win->unlock_all();
    self.barrier();
  });
}

TEST(RmaLock, UnlockWithoutLockAborts) {
  World world(1);
  world.run([](Rank& self) {
    auto win = self.win_allocate(8, 1);
    EXPECT_DEATH(win->unlock(0), "without holding");
  });
}

TEST(RmaLock, DoubleLockAborts) {
  World world(1);
  world.run([](Rank& self) {
    auto win = self.win_allocate(8, 1);
    win->lock(rma::Window::LockKind::kShared, 0);
    EXPECT_DEATH(win->lock(rma::Window::LockKind::kShared, 0),
                 "already holding");
    win->unlock(0);
  });
}
