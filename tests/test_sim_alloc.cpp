// Allocation accounting for the engine hot path.
//
// The ISSUE-3 acceptance bar: posting and executing inline-sized closures on
// the calendar queue performs **zero heap allocations** in steady state. We
// verify it with a global counting operator new/delete (this translation
// unit only — tests run as separate executables, so the replacement cannot
// perturb other suites). The pool, calendar buckets, and Trigger scratch
// buffers are warmed by a first round; the measured rounds then assert an
// allocation delta of exactly zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/engine.hpp"

// GCC infers malloc-like attributes for the replaced operator new below and
// then flags every inlined delete against it; the pairing is correct (free
// handles both malloc and aligned_alloc memory on this platform).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

}  // namespace

// Replace global new/delete with counting versions. std::malloc/free keep
// usable_size semantics out of the picture; alignment overloads forward so
// over-aligned types stay correct.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) /
                                       static_cast<std::size_t>(al) *
                                       static_cast<std::size_t>(al)))
    return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept {
  if (p) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  if (p) g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t al) noexcept {
  ::operator delete(p, al);
}

namespace {

using namespace narma;

std::uint64_t allocs_now() {
  return g_allocs.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// InlineFn in isolation: inline-sized closures never touch the heap; an
// oversized closure goes to the slab pool (one slab allocation, amortized).
// ---------------------------------------------------------------------------

TEST(InlineFnAlloc, InlineSizedClosureNeverAllocates) {
  // 40 bytes of capture: the NIC delivery shape (a handful of ints/pointers)
  // — fits the 48-byte inline buffer.
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  std::uint64_t sink = 0;
  sim::EventPool pool;
  const std::uint64_t before = allocs_now();
  for (int i = 0; i < 1000; ++i) {
    sim::InlineFn fn([&sink, a, b, c, d] { sink += a + b + c + d; }, &pool);
    sim::InlineFn moved = std::move(fn);
    moved();
  }
  EXPECT_EQ(allocs_now() - before, 0u);
  EXPECT_EQ(sink, 10000u);
  EXPECT_EQ(pool.stats().live, 0u);
}

TEST(InlineFnAlloc, OversizedClosureUsesPoolAndRecycles) {
  struct Big {
    std::uint64_t payload[12];  // 96 bytes > 48-byte inline buffer
  };
  sim::EventPool pool;
  std::uint64_t sink = 0;
  {  // warm: first alloc grows a slab
    Big big{};
    big.payload[0] = 7;
    sim::InlineFn fn([big, &sink] { sink += big.payload[0]; }, &pool);
    fn();
  }
  EXPECT_EQ(pool.stats().live, 0u);
  EXPECT_GE(pool.stats().capacity, 1u);
  const std::uint64_t before = allocs_now();
  for (int i = 0; i < 1000; ++i) {
    Big big{};
    big.payload[0] = 1;
    sim::InlineFn fn([big, &sink] { sink += big.payload[0]; }, &pool);
    fn();
  }
  // Steady state: every block comes from the warmed free list.
  EXPECT_EQ(allocs_now() - before, 0u);
  EXPECT_GE(pool.stats().recycled, 1000u);
}

// ---------------------------------------------------------------------------
// Full engine: a NIC-like workload (post from handlers, trigger wakes,
// batched posts) allocates nothing after a warm-up run.
// ---------------------------------------------------------------------------

TEST(EngineAlloc, SteadyStatePostAndDrainIsAllocationFree) {
  sim::Engine eng(2);
  sim::Trigger trg;
  std::uint64_t sink = 0;
  std::uint64_t measured_allocs = 0;
  int notifies = 0;
  constexpr int kRoundsPerPhase = 200;
  sim::Engine* ep = &eng;
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      // Phases 0-1 warm every container on the hot path (calendar segments
      // under both the construction-time and the rebuilt bucket geometry,
      // slab pool, ready heap, trigger waiter/scratch ping-pong); phase 2
      // replays the identical traffic pattern and must allocate nothing.
      for (int phase = 0; phase < 3; ++phase) {
        const std::uint64_t before = allocs_now();
        const Time base = r.now();
        for (int i = 1; i <= kRoundsPerPhase; ++i) {
          const Time t = base + us(static_cast<double>(i));
          const std::uint64_t x = static_cast<std::uint64_t>(i);
          ep->post(t, [ep, &trg, &sink, &notifies, x, t] {
            sink += x;
            ep->post_batch(
                t, [&sink, x] { sink += x; },
                [ep, &trg, &notifies, t] {
                  ++notifies;
                  trg.notify(*ep, t);
                });
          });
        }
        r.yield_until(base + us(kRoundsPerPhase + 20));
        if (phase == 2) measured_allocs = allocs_now() - before;
      }
    } else {
      for (int i = 0; i < 3 * kRoundsPerPhase; ++i) r.wait(trg, "alloc-wait");
    }
  });
  // 200 single posts + 200 batched pairs + 200 notify/wait round-trips in
  // the measured phase: all storage must come from warmed containers.
  EXPECT_EQ(measured_allocs, 0u);
  EXPECT_EQ(notifies, 3 * kRoundsPerPhase);
  EXPECT_GT(sink, 0u);
}

// Trigger::notify with a persistent waiter population: the scratch ping-pong
// must not allocate after the first notify sized it.
TEST(EngineAlloc, TriggerNotifyIsAllocationFreeAfterWarmup) {
  sim::Engine eng(4);
  sim::Trigger trg;
  std::uint64_t waker_allocs = 0;
  int rounds_done = 0;
  constexpr int kRounds = 100;
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      // Warm round, then measure the remaining notifies.
      for (int i = 1; i <= kRounds; ++i) {
        const Time t = us(static_cast<double>(i));
        r.yield_until(t);
        const std::uint64_t before = allocs_now();
        trg.notify(r.engine(), t);
        if (i > 1) waker_allocs += allocs_now() - before;
        rounds_done = i;
      }
      r.yield_until(us(kRounds + 2));
    } else {
      while (rounds_done < kRounds) r.wait(trg, "notify-alloc");
    }
  });
  EXPECT_EQ(waker_allocs, 0u);
}

}  // namespace
