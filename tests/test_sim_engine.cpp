// Unit tests of the discrete-event engine: virtual clocks, event ordering,
// cooperative scheduling, triggers, and determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/engine.hpp"

using namespace narma;

TEST(SimEngine, SingleRankClockStartsAtZero) {
  sim::Engine eng(1);
  Time seen = 1;
  eng.run([&](sim::RankCtx& r) { seen = r.now(); });
  EXPECT_EQ(seen, 0u);
}

TEST(SimEngine, AdvanceChargesVirtualTime) {
  sim::Engine eng(1);
  Time seen = 0;
  eng.run([&](sim::RankCtx& r) {
    r.advance(us(3));
    r.advance(ns(500));
    seen = r.now();
  });
  EXPECT_EQ(seen, us(3) + ns(500));
}

TEST(SimEngine, AdvanceToNeverMovesBackward) {
  sim::Engine eng(1);
  eng.run([&](sim::RankCtx& r) {
    r.advance(us(10));
    r.advance_to(us(5));  // no-op
    EXPECT_EQ(r.now(), us(10));
    r.advance_to(us(20));
    EXPECT_EQ(r.now(), us(20));
  });
}

TEST(SimEngine, RanksRunIndependently) {
  sim::Engine eng(4);
  std::vector<Time> clocks(4);
  eng.run([&](sim::RankCtx& r) {
    r.advance(us(static_cast<double>(r.id() + 1)));
    clocks[static_cast<std::size_t>(r.id())] = r.now();
  });
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(clocks[static_cast<std::size_t>(i)], us(i + 1.0));
}

TEST(SimEngine, EventsExecuteInTimeOrder) {
  sim::Engine eng(1);
  std::vector<int> order;
  eng.run([&](sim::RankCtx& r) {
    r.engine().post(us(3), [&] { order.push_back(3); });
    r.engine().post(us(1), [&] { order.push_back(1); });
    r.engine().post(us(2), [&] { order.push_back(2); });
    r.yield_until(us(10));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  });
}

TEST(SimEngine, EqualTimeEventsKeepIssueOrder) {
  sim::Engine eng(1);
  std::vector<int> order;
  eng.run([&](sim::RankCtx& r) {
    for (int i = 0; i < 16; ++i)
      r.engine().post(us(1), [&order, i] { order.push_back(i); });
    r.yield_until(us(2));
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  });
}

TEST(SimEngine, DrainExecutesOnlyDueEvents) {
  sim::Engine eng(1);
  eng.run([&](sim::RankCtx& r) {
    int fired = 0;
    r.engine().post(us(1), [&] { ++fired; });
    r.engine().post(us(5), [&] { ++fired; });
    r.advance(us(2));
    r.drain();
    EXPECT_EQ(fired, 1);
    r.advance(us(10));
    r.drain();
    EXPECT_EQ(fired, 2);
  });
}

TEST(SimEngine, EventPostedFromEventRunsWhenDue) {
  sim::Engine eng(1);
  std::vector<int> order;
  eng.run([&](sim::RankCtx& r) {
    r.engine().post(us(1), [&] {
      order.push_back(1);
      r.engine().post(us(1), [&] { order.push_back(2); });  // same time
      r.engine().post(us(4), [&] { order.push_back(4); });
    });
    r.yield_until(us(2));
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    r.yield_until(us(5));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 4}));
  });
}

TEST(SimEngine, YieldUntilAdvancesClock) {
  sim::Engine eng(2);
  eng.run([&](sim::RankCtx& r) {
    r.yield_until(us(7));
    EXPECT_GE(r.now(), us(7));
  });
}

TEST(SimEngine, TriggerWakesBlockedRank) {
  sim::Engine eng(2);
  sim::Trigger trg;
  bool flag = false;
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      r.advance(us(2));
      r.engine().post(us(5), [&, t = us(5)] {
        flag = true;
        trg.notify(r.engine(), t);
      });
    } else {
      while (!flag) r.wait(trg, "test-wait");
      // Woken no earlier than the notify time.
      EXPECT_GE(r.now(), us(5));
      EXPECT_TRUE(flag);
    }
  });
}

TEST(SimEngine, TriggerWakesAllWaiters) {
  sim::Engine eng(4);
  sim::Trigger trg;
  bool flag = false;
  std::atomic<int> woken{0};
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      r.engine().post(us(1), [&] {
        flag = true;
        trg.notify(r.engine(), us(1));
      });
    } else {
      while (!flag) r.wait(trg, "multi-wait");
      woken.fetch_add(1);
    }
  });
  EXPECT_EQ(woken.load(), 3);
}

TEST(SimEngine, WaitDeadlineTimesOutAtDeadline) {
  sim::Engine eng(1);
  sim::Trigger trg;
  eng.run([&](sim::RankCtx& r) {
    // Nobody notifies; the rank resumes exactly at the deadline.
    r.wait_deadline(trg, us(5), "deadline-only");
    EXPECT_EQ(r.now(), us(5));
  });
}

TEST(SimEngine, WaitDeadlineWakesEarlyOnNotify) {
  sim::Engine eng(1);
  sim::Trigger trg;
  eng.run([&](sim::RankCtx& r) {
    r.engine().post(us(1), [&] { trg.notify(r.engine(), us(1)); });
    r.wait_deadline(trg, us(10), "deadline-or-notify");
    // The notify wins; the stale timeout heap entry must not resume the
    // rank a second time nor advance it to us(10).
    EXPECT_EQ(r.now(), us(1));
    r.yield_until(us(20));
    EXPECT_EQ(r.now(), us(20));
  });
}

TEST(SimEngine, ChargeMeasuredAddsTime) {
  sim::Engine eng(1);
  eng.run([&](sim::RankCtx& r) {
    const Time before = r.now();
    volatile double sink = 0;
    r.charge_measured([&] {
      for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
    });
    EXPECT_GT(r.now(), before);
  });
}

TEST(SimEngine, ManyRanksFinish) {
  sim::Engine eng(64);
  std::atomic<int> done{0};
  eng.run([&](sim::RankCtx& r) {
    r.advance(ns(static_cast<double>(r.id())));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(SimEngine, EventCountersTrack) {
  sim::Engine eng(1);
  eng.run([&](sim::RankCtx& r) {
    r.engine().post(us(1), [] {});
    r.engine().post(us(2), [] {});
    r.yield_until(us(3));
  });
  EXPECT_EQ(eng.events_posted(), 2u);
  EXPECT_EQ(eng.events_executed(), 2u);
}

// Determinism: the same program yields bit-identical virtual timings.
TEST(SimEngine, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine eng(8);
    sim::Trigger trg;
    int token = 0;
    std::vector<Time> finish(8);
    eng.run([&](sim::RankCtx& r) {
      // Ring of notifications: rank i waits for token == i, passes it on.
      while (token != r.id()) r.wait(trg, "ring");
      r.advance(ns(123));
      ++token;
      trg.notify(r.engine(), r.now());
      finish[static_cast<std::size_t>(r.id())] = r.now();
    });
    return finish;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}
