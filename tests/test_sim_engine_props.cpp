// Property tests of the engine's event and scheduling core.
//
// The headline property mirrors the PR-1 linear-vs-indexed matcher test:
// the legacy binary heap and the calendar queue must produce *identical*
// executions — same event order, same virtual times, same events_executed —
// across >= 1000 randomized schedules (random rank counts, event trees with
// same-time children, yields, interleaved drains). Alongside it live the
// engine edge cases: events posted exactly at a rank's resume horizon,
// posting from inside a handler at the same timestamp, batched posts, and
// the deadlock-dump death test.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

using namespace narma;

namespace {

// ---------------------------------------------------------------------------
// Randomized-schedule equivalence harness. A schedule is generated from a
// seed *before* execution (so both engine configurations replay exactly the
// same program): per-rank op lists (advance / post / yield / drain) plus a
// tree of event specs whose children repost at relative delays (including
// zero, i.e. same-timestamp posting from inside a handler).
// ---------------------------------------------------------------------------

struct EventSpec {
  Time delay = 0;                // relative to the posting context
  std::vector<int> children;     // indices into Script::events
};

struct Op {
  enum Kind : std::uint8_t { kAdvance, kPost, kYield, kDrain } kind;
  Time dt = 0;
  int event = -1;  // for kPost
};

struct Script {
  int nranks = 1;
  std::vector<std::vector<Op>> ops;  // per rank
  std::vector<EventSpec> events;
};

Script make_script(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Script sc;
  sc.nranks = 1 + static_cast<int>(rng.next_below(4));
  sc.ops.resize(static_cast<std::size_t>(sc.nranks));
  for (auto& ops : sc.ops) {
    const std::size_t n_ops = 2 + rng.next_below(24);
    for (std::size_t i = 0; i < n_ops; ++i) {
      Op op;
      switch (rng.next_below(4)) {
        case 0:
          op.kind = Op::kAdvance;
          op.dt = ns(static_cast<double>(rng.next_below(900)));
          break;
        case 1: {
          op.kind = Op::kPost;
          // Delays cluster near zero (mostly-monotonic NIC-like pattern)
          // with occasional far-future outliers.
          op.dt = rng.next_below(8) == 0
                      ? us(static_cast<double>(1 + rng.next_below(50)))
                      : ns(static_cast<double>(rng.next_below(1200)));
          const std::size_t parent = sc.events.size();
          op.event = static_cast<int>(parent);
          sc.events.push_back(EventSpec{});
          const std::size_t n_children = rng.next_below(3);
          for (std::size_t c = 0; c < n_children; ++c) {
            EventSpec child;
            // Zero-delay children exercise same-timestamp posting from
            // inside a running handler.
            child.delay = rng.next_below(3) == 0
                              ? 0
                              : ns(static_cast<double>(rng.next_below(700)));
            sc.events[parent].children.push_back(
                static_cast<int>(sc.events.size()));
            sc.events.push_back(child);
          }
          break;
        }
        case 2:
          op.kind = Op::kYield;
          op.dt = ns(static_cast<double>(rng.next_below(2500)));
          break;
        default:
          op.kind = Op::kDrain;
          break;
      }
      ops.push_back(op);
    }
  }
  return sc;
}

struct RunLog {
  std::vector<std::pair<int, Time>> exec;  // (event index, scheduled time)
  std::vector<Time> finish;                // per-rank final clock
  std::uint64_t events_executed = 0;
  std::uint64_t events_posted = 0;

  bool operator==(const RunLog&) const = default;
};

void post_spec(sim::Engine& eng, const Script& sc, int idx, Time t,
               RunLog& log) {
  eng.post(t, [&eng, &sc, idx, t, &log] {
    log.exec.emplace_back(idx, t);
    const EventSpec& ev = sc.events[static_cast<std::size_t>(idx)];
    for (int c : ev.children)
      post_spec(eng, sc, c,
                t + sc.events[static_cast<std::size_t>(c)].delay, log);
  });
}

RunLog run_script(const Script& sc, sim::SimParams sp) {
  sim::Engine eng(sc.nranks, sp);
  RunLog log;
  log.finish.resize(static_cast<std::size_t>(sc.nranks));
  eng.run([&](sim::RankCtx& r) {
    for (const Op& op : sc.ops[static_cast<std::size_t>(r.id())]) {
      switch (op.kind) {
        case Op::kAdvance: r.advance(op.dt); break;
        case Op::kPost:
          post_spec(r.engine(), sc, op.event, r.now() + op.dt, log);
          break;
        case Op::kYield: r.yield_until(r.now() + op.dt); break;
        case Op::kDrain: r.drain(); break;
      }
    }
    // Push every rank past the last possible event so all events execute.
    r.yield_until(r.now() + us(200));
    log.finish[static_cast<std::size_t>(r.id())] = r.now();
  });
  log.events_executed = eng.events_executed();
  log.events_posted = eng.events_posted();
  return log;
}

TEST(EngineQueueEquivalence, ThousandRandomSchedules) {
  sim::SimParams legacy_p;
  legacy_p.event_queue = sim::EventQueue::kLegacyHeap;
  sim::SimParams calendar_p;
  calendar_p.event_queue = sim::EventQueue::kCalendar;
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const Script sc = make_script(seed);
    const RunLog legacy = run_script(sc, legacy_p);
    const RunLog calendar = run_script(sc, calendar_p);
    ASSERT_EQ(legacy, calendar) << "divergence at seed " << seed;
    ASSERT_EQ(legacy.events_executed, legacy.events_posted)
        << "unexecuted events at seed " << seed;
  }
}

// Tiny calendars force constant bucket-drain/rebuild churn; order must not
// change (the calendar geometry is performance-only state).
TEST(EngineQueueEquivalence, CalendarGeometryIsOrderInvariant) {
  sim::SimParams default_p;
  sim::SimParams one_bucket = default_p;
  one_bucket.calendar_buckets = 1;
  sim::SimParams odd_buckets = default_p;
  odd_buckets.calendar_buckets = 7;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Script sc = make_script(seed);
    const RunLog a = run_script(sc, default_p);
    ASSERT_EQ(a, run_script(sc, one_bucket))
        << "single-bucket divergence at seed " << seed;
    ASSERT_EQ(a, run_script(sc, odd_buckets))
        << "odd-bucket divergence at seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Edge cases, run under both queue implementations.
// ---------------------------------------------------------------------------

class EngineEdge : public ::testing::TestWithParam<sim::EventQueue> {
 protected:
  sim::SimParams params() const {
    sim::SimParams sp;
    sp.event_queue = GetParam();
    return sp;
  }
};

// An event posted exactly at a rank's resume horizon executes before the
// rank resumes (hardware-before-software at equal instants).
TEST_P(EngineEdge, EventExactlyAtResumeHorizonRunsFirst) {
  sim::Engine eng(2, params());
  bool fired = false;
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      r.engine().post(us(5), [&] { fired = true; });
      r.yield_until(us(10));
    } else {
      r.yield_until(us(5));  // resume horizon == event time
      EXPECT_TRUE(fired);
      EXPECT_EQ(r.now(), us(5));
    }
  });
  EXPECT_TRUE(fired);
}

// post() from inside a handler at the handler's own timestamp: the child
// executes within the same drain, after the parent, before any later event.
TEST_P(EngineEdge, PostFromHandlerAtSameTimestamp) {
  sim::Engine eng(1, params());
  std::vector<int> order;
  eng.run([&](sim::RankCtx& r) {
    r.engine().post(us(2), [&] { order.push_back(99); });
    r.engine().post(us(1), [&, t = us(1)] {
      order.push_back(1);
      r.engine().post(t, [&, t] {
        order.push_back(2);
        r.engine().post(t, [&] { order.push_back(3); });  // nested again
      });
    });
    r.yield_until(us(3));
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 99}));
}

// post_batch schedules at one timestamp in argument order, interleaving
// correctly with singly-posted events at the same time.
TEST_P(EngineEdge, PostBatchKeepsArgumentOrder) {
  sim::Engine eng(1, params());
  std::vector<int> order;
  eng.run([&](sim::RankCtx& r) {
    r.engine().post(us(1), [&] { order.push_back(0); });
    r.engine().post_batch(
        us(1), [&] { order.push_back(1); }, [&] { order.push_back(2); },
        [&] { order.push_back(3); });
    r.engine().post(us(1), [&] { order.push_back(4); });
    r.engine().post_batch(us(1), [&] { order.push_back(5); });
    r.yield_until(us(2));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(eng.events_posted(), 6u);
  EXPECT_EQ(eng.events_executed(), 6u);
}

// A waiter woken inside a handler that immediately re-waits must not be
// lost when the trigger is notified again (the notify scratch-buffer swap
// must leave the waiter list usable during the wake sweep).
TEST_P(EngineEdge, RewaitingWokenRankIsNotLost) {
  sim::Engine eng(2, params());
  sim::Trigger trg;
  int phase = 0;
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      r.engine().post(us(1), [&] {
        phase = 1;
        trg.notify(r.engine(), us(1));
      });
      r.engine().post(us(2), [&] {
        phase = 2;
        trg.notify(r.engine(), us(2));
      });
      r.yield_until(us(3));
    } else {
      // Woken at phase 1, predicate still unmet -> re-waits on the same
      // trigger; the second notify must find it.
      while (phase != 2) r.wait(trg, "re-wait");
      EXPECT_EQ(phase, 2);
      EXPECT_GE(r.now(), us(2));
    }
  });
  EXPECT_EQ(phase, 2);
}

// Steady-state notify with churning waiters must not leak wakeups across
// notify calls (scratch reuse).
TEST_P(EngineEdge, RepeatedNotifyWakesEachRegistrationOnce) {
  sim::Engine eng(4, params());
  sim::Trigger trg;
  int round = 0;
  constexpr int kRounds = 64;
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      for (int i = 1; i <= kRounds; ++i)
        r.engine().post(us(i), [&, i, t = us(i)] {
          round = i;
          trg.notify(r.engine(), t);
        });
      r.yield_until(us(kRounds + 1));
    } else {
      int last_seen = 0;
      while (round < kRounds) {
        r.wait(trg, "round-wait");
        EXPECT_GT(round, last_seen);  // every wake observes fresh progress
        last_seen = round;
      }
    }
  });
  EXPECT_EQ(round, kRounds);
}

INSTANTIATE_TEST_SUITE_P(BothQueues, EngineEdge,
                         ::testing::Values(sim::EventQueue::kLegacyHeap,
                                           sim::EventQueue::kCalendar),
                         [](const auto& info) {
                           return info.param == sim::EventQueue::kCalendar
                                      ? "calendar"
                                      : "legacy";
                         });

// ---------------------------------------------------------------------------
// Deadlock dump (death test): a rank blocked on a never-notified trigger
// with no pending events must abort with the diagnostic state dump.
// ---------------------------------------------------------------------------

TEST(EngineDeath, DeadlockDumpsRankStatesAndAborts) {
  // The engine spawns rank threads; fork-after-thread needs the re-exec'ing
  // death-test style.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::Engine eng(2);
        sim::Trigger trg;
        eng.run([&](sim::RankCtx& r) {
          if (r.id() == 0) r.wait(trg, "never-notified");
        });
      },
      "simulation deadlock");
}

}  // namespace
