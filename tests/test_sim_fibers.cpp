// Tests of the fiber execution model (sim/fiber.hpp, DESIGN.md §8): the
// threads-vs-fibers bit-equivalence property, the guard-page stack
// protection, the stale ready-heap skip path, the one-cache-line RankCtx
// layout, and the fompi binding under both execution models. The 4096-rank
// smoke lives in the FiberEngineSlow suite, registered separately under the
// ctest `slow` label.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "apps/stencil.hpp"
#include "apps/tree.hpp"
#include "cachesim/cache.hpp"
#include "core/fompi.hpp"
#include "core/world.hpp"
#include "golden_schedule.hpp"
#include "sim/fiber.hpp"

using namespace narma;

namespace {

// Scoped NARMA_EXEC override: World::resolve_params reads the environment
// on construction, so flipping it selects the execution model for every
// World built inside the scope.
class ScopedExecModel {
 public:
  explicit ScopedExecModel(const char* model) {
    setenv("NARMA_EXEC", model, 1);
  }
  ~ScopedExecModel() { unsetenv("NARMA_EXEC"); }
};

}  // namespace

// The tentpole property: the fiber engine is a pure execution-model swap.
// Re-running the transport-backend golden workload — 1000 randomized
// schedules covering every lane threshold, both matchers, and all three
// notification kinds — under each model must reproduce the committed golden
// hash bit for bit.
TEST(FiberEngine, ThreadsAndFibersBitIdentical1000Schedules) {
  std::uint64_t fibers_hash = 0;
  std::uint64_t threads_hash = 0;
  {
    ScopedExecModel exec("fibers");
    fibers_hash = golden::all_schedules_hash(golden::kGoldenScheduleCount);
  }
  {
    ScopedExecModel exec("threads");
    threads_hash = golden::all_schedules_hash(golden::kGoldenScheduleCount);
  }
  EXPECT_EQ(fibers_hash, golden::kGoldenScheduleHash);
  EXPECT_EQ(threads_hash, golden::kGoldenScheduleHash);
}

namespace {

// Deep recursion with a real frame per level; noinline + volatile defeat
// tail-call collapse so each level consumes stack.
__attribute__((noinline)) std::uint64_t blow_stack(std::uint64_t depth) {
  volatile char pad[512];
  pad[0] = static_cast<char>(depth);
  if (depth == 0) return static_cast<std::uint64_t>(pad[0]);
  return blow_stack(depth - 1) + static_cast<std::uint64_t>(pad[511]);
}

}  // namespace

// Overrunning a fiber stack must fault on the PROT_NONE guard page — a
// clean crash, not silent corruption of the neighboring mapping.
TEST(FiberEngineDeathTest, StackOverflowHitsGuardPage) {
  EXPECT_DEATH(
      {
        sim::SimParams sp;
        sp.exec_model = sim::ExecModel::kFibers;
        sp.stack_bytes = sim::Fiber::kMinStackBytes;
        sim::Engine eng(1, sp);
        eng.run([](sim::RankCtx&) { blow_stack(1u << 20); });
      },
      "");
}

// A wait_deadline whose trigger fires before the deadline leaves the
// timeout half in the ready heap; the dispatch loop must drop it by its
// stale generation (one counter tick, no heap rebuild) instead of resuming
// the rank twice.
TEST(FiberEngine, StaleDeadlineEntrySkippedAndCounted) {
  sim::Engine eng(2);
  sim::Trigger trg;
  Time woken_at = 0;
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      r.wait_deadline(trg, us(100), "test-wait");
      woken_at = r.now();
      // Park again past the stale deadline so the dispatch loop must pop
      // (and skip) the leftover us(100) entry before this one.
      r.yield_until(us(200));
    } else {
      r.yield_until(us(1));
      trg.notify(r.engine(), r.now());  // beats the us(100) deadline
    }
  });
  EXPECT_EQ(woken_at, us(1));  // the wake won, not the deadline
  EXPECT_EQ(eng.stale_heap_skips(), 1u);
}

// Without a racing wake the timeout entry is the live one: no skips.
TEST(FiberEngine, DeadlineTimeoutAloneIsNotStale) {
  sim::Engine eng(1);
  sim::Trigger trg;
  eng.run([&](sim::RankCtx& r) {
    r.wait_deadline(trg, us(5), "test-timeout");
    EXPECT_EQ(r.now(), us(5));
  });
  EXPECT_EQ(eng.stale_heap_skips(), 0u);
}

// The counter is exported through the world's metrics registry.
TEST(FiberEngine, StaleSkipCounterExported) {
  WorldParams wp;
  wp.enable_metrics = true;
  World world(2, wp);
  world.run([](Rank& self) { self.barrier(); });
  // Barrier-only run: the value is workload-dependent, but the counter
  // family must exist (value readable, not a missing-metric abort).
  EXPECT_GE(world.metrics()->counter_value("sim.stale_heap_skips", 0), 0u);
}

// The scheduler's per-rank record is exactly one aligned cache line, so the
// dispatch loop's park/wake/resume path touches one line per rank. The
// static_asserts in engine.cpp pin the layout; the cachesim mirror pins the
// consequence the layout exists for.
TEST(FiberEngine, RankCtxSchedulingRecordIsOneCacheLine) {
  static_assert(sizeof(sim::RankCtx) == 64);
  static_assert(alignof(sim::RankCtx) == 64);
  sim::Engine eng(8);
  cachesim::Cache l1 = cachesim::make_l1d();
  for (int i = 0; i < 8; ++i) {
    // Cold touch of the whole record: exactly one compulsory miss — the
    // record neither spans nor straddles a line boundary.
    EXPECT_EQ(l1.touch_object(&eng.rank(i)), 1u) << "rank " << i;
    EXPECT_EQ(l1.touch_object(&eng.rank(i)), 0u) << "rank " << i;
  }
  EXPECT_EQ(l1.stats().misses, 8u);
}

// Engine::current() carries the fompi binding per rank context, which must
// hold in both execution models (under fibers every rank shares one OS
// thread, so a thread_local binding would alias them).
namespace {

void fompi_ring(Rank& self) {
  using namespace narma::fompi;
  bind(self);
  int me = -1, np = 0;
  foMPI_Comm_rank(&me);
  foMPI_Comm_size(&np);
  EXPECT_EQ(me, self.id());
  double* buf = nullptr;
  foMPI_Win win;
  foMPI_Win_allocate(sizeof(double), sizeof(double),
                     reinterpret_cast<void**>(&buf), &win);
  const int right = (me + 1) % np;
  const int left = (me + np - 1) % np;
  foMPI_Request req;
  foMPI_Notify_init(win, left, /*tag=*/7, 1, &req);
  foMPI_Start(&req);
  const double payload = 100.0 + me;
  foMPI_Put_notify(&payload, 1, FOMPI_DOUBLE, right, 0, 1, FOMPI_DOUBLE, win,
                   /*tag=*/7);
  foMPI_Status st;
  foMPI_Wait(&req, &st);
  EXPECT_EQ(st.source, left);
  EXPECT_EQ(buf[0], 100.0 + left);
  foMPI_Request_free(&req);
  foMPI_Barrier();
  foMPI_Win_free(&win);
}

}  // namespace

TEST(FiberEngine, FompiBindingPerRankUnderFibers) {
  ScopedExecModel exec("fibers");
  World world(4);
  world.run(fompi_ring);
}

TEST(FiberEngine, FompiBindingPerRankUnderThreads) {
  ScopedExecModel exec("threads");
  World world(4);
  world.run(fompi_ring);
}

// ---------------------------------------------------------------------------
// Scale smoke (ctest label `slow`): 4096 simulated ranks on one engine
// thread. Threads could not even spawn this many contexts with default
// stacks; under fibers both paper workloads must complete and verify.

TEST(FiberEngineSlow, FourKRankStencilCompletes) {
  World world(4096);
  apps::StencilConfig cfg;
  cfg.rows = 16;
  cfg.total_cols = 2 * 4096;  // two columns per rank
  cfg.iters = 1;
  cfg.variant = apps::StencilVariant::kNotified;
  cfg.per_point = ns(2);
  apps::StencilResult res;
  world.run([&](Rank& self) {
    apps::StencilResult r = run_stencil(self, cfg);
    if (self.id() == 0) res = r;
  });
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.elapsed, 0u);
}

TEST(FiberEngineSlow, FourKRankTreeReductionCompletes) {
  World world(4096);
  apps::TreeConfig cfg;
  cfg.elems = 4;
  cfg.arity = 16;
  cfg.reps = 2;
  cfg.variant = apps::TreeVariant::kNotified;
  apps::TreeResult res;
  world.run([&](Rank& self) {
    apps::TreeResult r = run_tree(self, cfg);
    if (self.id() == 0) res = r;
  });
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.elapsed, 0u);
}
