// Tests of noncontiguous (strided / iovec) transfers: correctness of the
// gathered write, single-transaction cost, and notified strided puts (the
// column-halo use case of 2D decompositions).
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/world.hpp"

using namespace narma;

TEST(Strided, PutIovCommitsAllSegments) {
  sim::Engine eng(2);
  net::Fabric fabric(eng, {});
  std::vector<double> dst(16, 0.0);
  const net::MemKey key =
      fabric.nic(1).register_memory(dst.data(), dst.size() * 8);
  eng.run([&](sim::RankCtx& r) {
    if (r.id() == 0) {
      net::Nic& nic = fabric.nic(0);
      const double a = 1.5, b = 2.5, c = 3.5;
      std::array<net::Nic::IoSegment, 3> segs{
          net::Nic::IoSegment{0, &a, 8}, net::Nic::IoSegment{40, &b, 8},
          net::Nic::IoSegment{120, &c, 8}};
      net::PendingOps po;
      nic.put_iov(1, key, segs, {}, &po);
      nic.flush(po);
    } else {
      r.yield_until(us(100));
      EXPECT_EQ(dst[0], 1.5);
      EXPECT_EQ(dst[5], 2.5);
      EXPECT_EQ(dst[15], 3.5);
      EXPECT_EQ(dst[1], 0.0);
    }
  });
}

TEST(Strided, SingleTransactionOnTheWire) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(1024, 1);
    self.barrier();
    if (self.id() == 0) self.world().fabric().reset_counters();
    self.barrier();
    if (self.id() == 0) {
      std::vector<double> col(8, 7.0);
      win->put_strided(col.data(), sizeof(double), 8, sizeof(double), 1, 0,
                       128);
      win->flush(1);
      // Eight blocks, one data transfer.
      EXPECT_EQ(self.world().fabric().counters().data_transfers, 1u);
    }
    self.barrier();
  });
}

TEST(Strided, ColumnHaloRoundTrip) {
  // The 2D-decomposition use case: send the last *column* of a row-major
  // block into the neighbor's ghost column.
  World world(2);
  constexpr int kRows = 6, kCols = 4;
  world.run([](Rank& self) {
    // Local block: kRows x kCols doubles; ghost column at local col 0.
    auto win = self.win_allocate(kRows * kCols * sizeof(double),
                                 sizeof(double));
    auto mem = win->local<double>();
    for (int r = 0; r < kRows; ++r)
      for (int c = 0; c < kCols; ++c)
        mem[static_cast<std::size_t>(r * kCols + c)] =
            self.id() * 1000.0 + r * 10.0 + c;
    self.barrier();

    if (self.id() == 0) {
      // Put my last column into rank 1's ghost column (col 0), one block
      // of 8 bytes per row, strides of kCols doubles on both sides.
      win->put_strided(mem.data() + (kCols - 1), sizeof(double), kRows,
                       kCols * sizeof(double), 1, 0, kCols);
      win->flush(1);
    }
    self.barrier();
    if (self.id() == 1) {
      for (int r = 0; r < kRows; ++r)
        EXPECT_EQ(mem[static_cast<std::size_t>(r * kCols)],
                  r * 10.0 + (kCols - 1));
    }
    self.barrier();
  });
}

TEST(Strided, NotifiedStridedPutMatchesAndCommits) {
  World world(2);
  world.run([](Rank& self) {
    auto win = self.win_allocate(64 * sizeof(double), sizeof(double));
    if (self.id() == 0) {
      std::vector<double> blocks{1, 2, 3, 4};
      // 4 single-double blocks, source contiguous, target stride 16.
      self.na().put_notify_strided(
          *win, na::as_bytes(blocks.data(), 4 * sizeof(double)),
          sizeof(double), 4, sizeof(double), 1, 0, 16, /*tag=*/9);
      win->flush(1);
    } else {
      auto req = self.na().notify_init(*win, na::MatchSpec{0, 9}, 1);
      self.na().start(req);
      na::NaStatus st;
      self.na().wait(req, &st);
      EXPECT_EQ(st.bytes, 4 * sizeof(double));  // total of the shape
      auto mem = win->local<double>();
      EXPECT_EQ(mem[0], 1.0);
      EXPECT_EQ(mem[16], 2.0);
      EXPECT_EQ(mem[32], 3.0);
      EXPECT_EQ(mem[48], 4.0);
    }
    self.barrier();
  });
}

TEST(Strided, OutOfBoundsSegmentAborts) {
  EXPECT_DEATH(
      {
        World world(2);
        world.run([](Rank& self) {
          auto win = self.win_allocate(32, 1);
          if (self.id() == 0) {
            double v = 1;
            win->put_strided(&v, 8, 2, 0, 1, 0, /*stride=*/100);  // 2nd: 800
            win->flush(1);
          }
          self.barrier();
        });
      },
      "out of bounds");
}
