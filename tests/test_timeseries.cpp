// Tests of the flight recorder (src/obs/timeseries, DESIGN.md §12) and the
// host-time phase profiler (src/obs/profile): the telescoping invariant
// (window deltas sum exactly to the end-of-run metrics totals, including
// through downsampling merges), bit-identical exports across repeated runs
// and with profiling on or off, the fully disabled path, straggler and
// residual monitors, and the profiler's accounting identities.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/world.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"

using namespace narma;

namespace {

/// Deterministic 4-rank workload: a ring of notified puts with calibrated
/// compute, long enough to span several 100 us recorder windows.
void run_ring(World& world, int iters = 12, Time compute_ps = us(30)) {
  world.run([iters, compute_ps](Rank& self) {
    const int next = (self.id() + 1) % self.size();
    const int prev = (self.id() + self.size() - 1) % self.size();
    auto win = self.win_allocate(64, 1);
    auto req = self.na().notify_init(*win, na::MatchSpec{prev, 7}, 1);
    double v = self.id();
    for (int i = 0; i < iters; ++i) {
      self.compute(compute_ps);
      self.na().put_notify(*win, na::as_bytes(&v, 8), next, 0, 7);
      win->flush(next);
      self.na().start(req);
      self.na().wait(req);
    }
    self.barrier();
  });
}

/// Sums every counter / histogram window delta per (family name, rank).
struct Telescoped {
  std::map<std::pair<std::string, int>, std::uint64_t> counter;
  std::map<std::pair<std::string, int>, std::pair<std::uint64_t,
                                                  std::uint64_t>> hist;
};

Telescoped telescope(const obs::TimeSeries& ts) {
  Telescoped out;
  const auto& fams = ts.families();
  for (const auto& w : ts.windows()) {
    for (const auto& c : w.cells) {
      const auto& f = fams[c.family];
      const auto key = std::make_pair(f.name, static_cast<int>(c.rank));
      if (f.kind == obs::Kind::kCounter) {
        out.counter[key] += c.a;
      } else if (f.kind == obs::Kind::kHistogram) {
        out.hist[key].first += c.a;
        out.hist[key].second += c.b;
      }
    }
  }
  return out;
}

bool is_host_time(const std::string& name) {
  return name.rfind("obs.phase_", 0) == 0 ||
         name.rfind("obs.profile_", 0) == 0 || name == "sim.run_wall_ns" ||
         name == "sim.events_per_sec";
}

/// Asserts the telescoping invariant against the registry's final totals.
void expect_telescopes(World& world) {
  ASSERT_NE(world.timeseries(), nullptr);
  ASSERT_NE(world.metrics(), nullptr);
  const Telescoped acc = telescope(*world.timeseries());
  std::size_t checked = 0;
  world.metrics()->visit([&](const obs::Registry::CellView& cell) {
    if (is_host_time(cell.name)) return;
    const auto key = std::make_pair(cell.name, cell.rank);
    if (cell.kind == obs::Kind::kCounter) {
      const auto it = acc.counter.find(key);
      const std::uint64_t got = it == acc.counter.end() ? 0 : it->second;
      EXPECT_EQ(got, cell.count) << cell.name << " rank " << cell.rank;
      ++checked;
    } else if (cell.kind == obs::Kind::kHistogram) {
      const auto it = acc.hist.find(key);
      const std::uint64_t got_n = it == acc.hist.end() ? 0 : it->second.first;
      const std::uint64_t got_s = it == acc.hist.end() ? 0 : it->second.second;
      EXPECT_EQ(got_n, cell.hist.count) << cell.name << " rank " << cell.rank;
      EXPECT_EQ(got_s, cell.hist.sum) << cell.name << " rank " << cell.rank;
      ++checked;
    }
  });
  EXPECT_GT(checked, 20u);  // the stack registered and telescoped real data
}

}  // namespace

TEST(TimeSeries, DisabledByDefault) {
  World world(2);
  EXPECT_EQ(world.timeseries(), nullptr);
  run_ring(world, 2);
  EXPECT_EQ(world.timeseries(), nullptr);
  EXPECT_FALSE(world.dump_timeseries("/nonexistent/ts.json"));
}

TEST(TimeSeries, WindowDeltasTelescopeToFinalTotals) {
  World world(4);
  world.enable_timeseries(us(50));
  run_ring(world);
  const obs::TimeSeries& ts = *world.timeseries();
  EXPECT_GT(ts.snapshots(), 2u);
  EXPECT_GE(ts.windows().size(), 2u);
  expect_telescopes(world);

  // Windows are contiguous from t=0 to the final finalize() boundary, and
  // rank deltas telescope to the engine's end-of-run clocks.
  Time prev_end = 0;
  for (const auto& w : ts.windows()) {
    EXPECT_EQ(w.t_begin, prev_end);
    EXPECT_GT(w.t_end, w.t_begin);
    prev_end = w.t_end;
  }
  for (int r = 0; r < 4; ++r) {
    Time total = 0, blocked = 0;
    for (const auto& w : ts.windows()) {
      total += w.ranks[static_cast<std::size_t>(r)].d_total;
      blocked += w.ranks[static_cast<std::size_t>(r)].d_blocked;
    }
    EXPECT_EQ(total, world.engine().rank(r).now()) << "rank " << r;
    EXPECT_EQ(blocked, world.engine().rank(r).blocked_time()) << "rank " << r;
  }
}

TEST(TimeSeries, DownsamplingKeepsMemoryBoundedAndTelescoping) {
  WorldParams wp;
  wp.obs.timeseries = true;
  wp.obs.timeseries_window_ps = us(2);  // many snapshots
  wp.obs.timeseries_capacity = 8;      // tiny ring forces merges
  World world(4, wp);
  run_ring(world, 16);
  const obs::TimeSeries& ts = *world.timeseries();
  EXPECT_GT(ts.merges(), 0u) << "run too short to exercise downsampling";
  EXPECT_LE(ts.windows().size(), 8u);
  EXPECT_GT(ts.snapshots(), 8u);
  // Merged windows carry their fold count; the sum of fold counts equals
  // the number of raw snapshots.
  std::uint64_t folded = 0;
  for (const auto& w : ts.windows()) folded += w.merged;
  EXPECT_EQ(folded, ts.snapshots());
  expect_telescopes(world);
}

TEST(TimeSeries, ExportBitIdenticalAcrossRunsAndWithProfilerOnOrOff) {
  auto run_once = [](bool profile) {
    World world(4);
    if (profile) world.enable_profiling();
    world.enable_timeseries(us(50));
    run_ring(world);
    std::vector<Time> clocks;
    for (int r = 0; r < 4; ++r)
      clocks.push_back(world.engine().rank(r).now());
    return std::make_pair(world.timeseries()->to_json(), clocks);
  };
  const auto [json1, clocks1] = run_once(false);
  const auto [json2, clocks2] = run_once(false);
  const auto [json3, clocks3] = run_once(true);
  EXPECT_EQ(json1, json2) << "recorder export differs across identical runs";
  EXPECT_EQ(json1, json3) << "host profiling perturbed the recorder export";
  EXPECT_EQ(clocks1, clocks2);
  EXPECT_EQ(clocks1, clocks3) << "host profiling perturbed virtual time";
}

TEST(TimeSeries, RecorderDoesNotPerturbVirtualMetrics) {
  auto final_counters = [](bool recorder) {
    World world(4);
    if (recorder) world.enable_timeseries(us(50));
    run_ring(world);
    std::map<std::pair<std::string, int>, std::uint64_t> out;
    world.metrics()->visit([&](const obs::Registry::CellView& cell) {
      if (cell.kind == obs::Kind::kCounter && !is_host_time(cell.name))
        out[{cell.name, cell.rank}] = cell.count;
    });
    return out;
  };
  EXPECT_EQ(final_counters(false), final_counters(true));
}

TEST(TimeSeries, HostTimeFamiliesExcludedFromSnapshots) {
  World world(2);
  world.enable_profiling();
  world.enable_timeseries(us(50));
  run_ring(world, 6);
  for (const auto& f : world.timeseries()->families())
    EXPECT_FALSE(is_host_time(f.name)) << f.name;
}

TEST(TimeSeries, StragglerFlagged) {
  WorldParams wp;
  World world(4, wp);
  world.enable_timeseries(us(100));
  // Ranks 0-2 stay busy all window; rank 3 computes a sliver and blocks in
  // the barrier — a straggler in every full window.
  world.run([](Rank& self) {
    for (int i = 0; i < 4; ++i) {
      self.compute(self.id() == 3 ? us(5) : us(95));
      self.barrier();
    }
  });
  bool straggler3 = false;
  for (const auto& a : world.timeseries()->anomalies())
    if (a.kind == "straggler" && a.rank == 3) straggler3 = true;
  EXPECT_TRUE(straggler3);
}

TEST(TimeSeries, ResidualRowsFromMsgTrace) {
  World world(4);  // default fabric: one rank per node -> aries inter-node
  world.enable_msgtrace(1);
  world.enable_timeseries(us(50));
  run_ring(world);
  const auto& rows = world.timeseries()->residuals();
  ASSERT_FALSE(rows.empty());
  std::uint64_t msgs = 0;
  for (const auto& r : rows) {
    EXPECT_EQ(r.backend, "aries");
    EXPECT_GT(r.mean_model_ps, 0.0);
    EXPECT_LT(r.window, world.timeseries()->windows().size());
    msgs += r.msgs;
  }
  EXPECT_GT(msgs, 0u);
  // The residual rows surface in the JSON export.
  const std::string doc = world.timeseries()->to_json();
  EXPECT_NE(doc.find("\"residuals\""), std::string::npos);
  EXPECT_NE(doc.find("\"aries\""), std::string::npos);
}

// --- Profiler ----------------------------------------------------------------

TEST(Profiler, ScopesAttributePhases) {
  obs::Profiler prof;
  prof.start();
  {
    obs::PhaseScope match(&prof, obs::Phase::kMatch);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 50000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    {
      obs::PhaseScope obs_scope(&prof, obs::Phase::kObs);
      for (int i = 0; i < 5000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    }
  }
  prof.stop();
  EXPECT_GT(prof.total_ticks(), 0u);
  EXPECT_GT(prof.stat(obs::Phase::kMatch).ticks, 0u);
  EXPECT_EQ(prof.stat(obs::Phase::kMatch).calls, 1u);
  EXPECT_EQ(prof.stat(obs::Phase::kObs).calls, 1u);
  // Attributed + unattributed ticks partition the run exactly.
  std::uint64_t attributed = 0;
  for (std::size_t p = 0; p < obs::kNumPhases; ++p)
    attributed += prof.stat(static_cast<obs::Phase>(p)).ticks;
  EXPECT_EQ(attributed + prof.unattributed_ticks(), prof.total_ticks());
  // Fractions sum to 1 over phases + unattributed.
  double frac = static_cast<double>(prof.unattributed_ticks()) /
                static_cast<double>(prof.total_ticks());
  for (std::size_t p = 0; p < obs::kNumPhases; ++p)
    frac += prof.fraction(static_cast<obs::Phase>(p));
  EXPECT_NEAR(frac, 1.0, 1e-9);
}

TEST(Profiler, ScopeIsNoOpWhenNullOrStopped) {
  {
    obs::PhaseScope s(nullptr, obs::Phase::kMatch);  // must not crash
  }
  obs::Profiler prof;  // never started
  {
    obs::PhaseScope s(&prof, obs::Phase::kMatch);
  }
  EXPECT_EQ(prof.stat(obs::Phase::kMatch).ticks, 0u);
  EXPECT_EQ(prof.stat(obs::Phase::kMatch).calls, 0u);
}

TEST(Profiler, ExportedGaugesCoverRunAndRespectObsBudget) {
  World world(4);
  world.enable_profiling();
  world.enable_timeseries(us(50));
  run_ring(world);
  obs::Registry& reg = *world.metrics();
  const auto total =
      static_cast<double>(reg.gauge_value("obs.profile_total_ns", 0));
  ASSERT_GT(total, 0.0);
  double attributed = 0;
  for (const char* ph : {"engine_pop", "callback", "rank_exec", "match",
                         "transfer", "app_compute", "obs"})
    attributed += static_cast<double>(
        reg.gauge_value(std::string("obs.phase_") + ph + "_ns", 0));
  const auto unattr = static_cast<double>(
      reg.gauge_value("obs.profile_unattributed_ns", 0));
  // The exported gauges partition the measured host run.
  EXPECT_NEAR(attributed + unattr, total, total * 0.01);
  EXPECT_LT(unattr / total, 0.10);
}
