// Tests of the virtual-time tracer: events recorded by the communication
// layers, Chrome trace-event JSON output, and the zero-overhead-off path.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

#include "common/json.hpp"
#include "core/world.hpp"
#include "sim/trace.hpp"

using namespace narma;

namespace {

std::string run_traced(std::size_t* events) {
  World world(2);
  world.enable_tracing();
  world.run([](Rank& self) {
    auto win = self.win_allocate(64, 1);
    if (self.id() == 0) {
      double v = 1.0;
      self.na().put_notify(*win, na::as_bytes(&v, 8), 1, 0, 3);
      win->flush(1);
      self.send(&v, 8, 1, 4);
    } else {
      auto req = self.na().notify_init(*win, na::MatchSpec{0, 3}, 1);
      self.na().start(req);
      self.na().wait(req);
      double v = 0;
      self.recv(&v, 8, 0, 4);
    }
    self.barrier();
  });
  *events = world.tracer()->event_count();
  return world.tracer()->to_json();
}

}  // namespace

TEST(Trace, RecordsCommunicationEvents) {
  std::size_t events = 0;
  const std::string json = run_traced(&events);
  EXPECT_GT(events, 6u);  // puts, ctrl msgs, waits, send/recv spans
}

TEST(Trace, JsonContainsExpectedCategoriesAndShape) {
  std::size_t events = 0;
  const std::string json = run_traced(&events);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"rdma\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"na\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"mp\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ctrl\""), std::string::npos);
  EXPECT_NE(json.find("rank 0"), std::string::npos);
  EXPECT_NE(json.find("rank 1"), std::string::npos);
  // Flow arrows come in start/end pairs.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// Chrome/Perfetto flow semantics: every flow start (ph:"s") needs a flow end
// (ph:"f") with the same id, and the end must bind to the enclosing slice
// ("bp":"e") or the arrow is dropped by the renderer. Checked on the parsed
// document, not by substring: the shape has regressed silently before.
TEST(Trace, FlowEventsPairUpAndBindEnclosing) {
  std::size_t events = 0;
  const json::ParseResult doc = json::parse(run_traced(&events));
  ASSERT_TRUE(doc.ok) << doc.error;
  std::map<std::int64_t, int> starts, ends;
  for (const json::Value& e : doc.value["traceEvents"].as_array()) {
    const std::string ph = e.string_or("ph", "");
    if (ph != "s" && ph != "f") continue;
    const json::Value& id = e["id"];
    ASSERT_TRUE(id.is_number()) << "flow event without numeric id";
    // Flow events ride a real slice: tid/pid/ts all present.
    EXPECT_TRUE(e["pid"].is_number());
    EXPECT_TRUE(e["tid"].is_number());
    EXPECT_TRUE(e["ts"].is_number());
    if (ph == "s") {
      ++starts[id.as_int()];
    } else {
      ++ends[id.as_int()];
      EXPECT_EQ(e.string_or("bp", ""), "e")
          << "flow end " << id.as_int() << " lacks bp:e";
    }
  }
  EXPECT_FALSE(starts.empty());
  EXPECT_EQ(starts, ends);  // same ids, same multiplicity
}

TEST(Trace, DynamicNamesAreInterned) {
  sim::Tracer t(1);
  for (int i = 0; i < 100; ++i)
    t.instant(0, "test", std::string("probe ") + std::to_string(i % 4),
              us(i + 1));
  // 100 events, 4 distinct dynamic strings stored.
  EXPECT_EQ(t.event_count(), 100u);
  EXPECT_EQ(t.interned_count(), 4u);
}

TEST(Trace, DisabledByDefault) {
  World world(2);
  world.run([](Rank& self) {
    if (self.id() == 0) {
      int v = 1;
      self.send(&v, 4, 1, 1);
    } else {
      int v = 0;
      self.recv(&v, 4, 0, 1);
    }
  });
  EXPECT_EQ(world.tracer(), nullptr);
  EXPECT_FALSE(world.dump_trace("/tmp/should_not_exist.json"));
}

TEST(Trace, WriteJsonToFile) {
  World world(1);
  world.enable_tracing();
  world.run([](Rank& self) { self.barrier(); });
  const std::string path = "/tmp/narma_trace_test.json";
  EXPECT_TRUE(world.dump_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(Trace, SpanAndInstantApi) {
  sim::Tracer t(2);
  t.span(0, "test", "work", us(1), us(3));
  t.instant(1, "test", "marker", us(2));
  t.flow(0, 1, "test", "msg", us(1), us(2));
  EXPECT_EQ(t.event_count(), 4u);  // span + instant + flow start/end
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Trace, EscapesSuspiciousNames) {
  sim::Tracer t(1);
  t.instant(0, "test", "quote\"back\\slash\n", us(1));
  const std::string json = t.to_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(Trace, OutOfRangeRankAborts) {
  sim::Tracer t(2);
  EXPECT_DEATH(t.instant(2, "test", "beyond", us(1)), "out-of-range rank");
  EXPECT_DEATH(t.instant(-1, "test", "negative", us(1)),
               "out-of-range rank");
}

TEST(Trace, CounterSamplesRenderAsCounterEvents) {
  sim::Tracer t(1);
  t.counter(0, "obs", "na.uq_depth (rank 0)", us(1), 3.0);
  t.counter(0, "obs", "na.uq_depth (rank 0)", us(2), 5.0);
  EXPECT_EQ(t.event_count(), 2u);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("na.uq_depth (rank 0)"), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
}
