// Tests of the TransportBackend layer (src/net/backend.*): routing of rank
// pairs onto per-channel backends, heterogeneous jobs mixing three fabrics,
// backend-tagged notification metrics, per-backend notification semantics
// (RAMC counting completions, verbs write-with-immediate), and the headline
// refactor invariant — the default shm+Aries configuration is bit-identical
// to the pre-backend fabric over the 1000-schedule property harness.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "core/world.hpp"
#include "golden_schedule.hpp"
#include "obs/msgtrace.hpp"

using namespace narma;

// ---------------------------------------------------------------------------
// Bit-identity: the backend refactor must not move a single virtual-time
// tick on the default path. The golden hash was captured from the
// pre-refactor tree over 1000 randomized schedules (see golden_schedule.hpp);
// sanitizer/debug builds run the 100-schedule prefix to stay fast.
// ---------------------------------------------------------------------------

TEST(TransportGolden, DefaultBackendBitIdenticalToPreRefactorFabric) {
#ifdef NDEBUG
  EXPECT_EQ(golden::all_schedules_hash(golden::kGoldenScheduleCount),
            golden::kGoldenScheduleHash);
#else
  EXPECT_EQ(golden::all_schedules_hash(golden::kGoldenScheduleCountShort),
            golden::kGoldenScheduleHashShort);
#endif
}

// ---------------------------------------------------------------------------
// Routing policy.
// ---------------------------------------------------------------------------

TEST(TransportRouting, ExplicitAriesRouteMatchesDefault) {
  // Forcing every inter-node pair through the route callback (returning the
  // same backend the default would pick) must not change any virtual time:
  // the route map only *selects* backends, it is not a cost.
  const auto run = [](bool with_route) {
    WorldParams wp;
    wp.fabric.ranks_per_node = 2;
    if (with_route)
      wp.fabric.route = [](int, int) { return net::BackendKind::kAries; };
    World world(4, wp);
    std::vector<Time> finals(4, 0);
    world.run([&finals](Rank& self) {
      auto win = self.win_allocate(4096, 1);
      const int right = (self.id() + 1) % self.size();
      const int left = (self.id() + 3) % self.size();
      std::vector<double> buf(512, 1.0 + self.id());
      for (int it = 0; it < 3; ++it) {
        self.na().put_notify(*win, na::as_bytes(buf.data(), 4096), right, 0,
                             it);
        win->flush(right);
        auto req = self.na().notify_init(*win, na::MatchSpec{left, it}, 1);
        self.na().start(req);
        self.na().wait(req);
        self.na().free(req);
      }
      self.barrier();
      finals[static_cast<std::size_t>(self.id())] = self.now();
    });
    return finals;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(TransportRouting, RamcAndVerbsDifferFromAries) {
  // Each backend carries its own LogGP table and notification costs, so the
  // same workload must finish at distinct virtual times per backend.
  const auto run = [](net::BackendKind inter) {
    WorldParams wp;
    wp.fabric.inter_node = inter;
    World world(2, wp);
    Time complete = 0;
    world.run([&complete](Rank& self) {
      auto win = self.win_allocate(8192, 1);
      std::vector<double> buf(1024, 2.0);
      auto req = self.na().notify_init(*win, na::MatchSpec{0, 7}, 1);
      self.barrier();
      if (self.id() == 0) {
        self.na().put_notify(*win, na::as_bytes(buf.data(), 8192), 1, 0, 7);
        win->flush(1);
      } else {
        self.na().start(req);
        self.na().wait(req);
        complete = self.now();
      }
      self.barrier();
    });
    return complete;
  };
  const Time aries = run(net::BackendKind::kAries);
  const Time ramc = run(net::BackendKind::kRamc);
  const Time verbs = run(net::BackendKind::kVerbs);
  EXPECT_NE(aries, ramc);
  EXPECT_NE(aries, verbs);
  EXPECT_NE(ramc, verbs);
}

// ---------------------------------------------------------------------------
// Heterogeneous three-fabric job: six ranks on three nodes, shm inside a
// node, RAMC between nodes 0 and 1, verbs for every pair touching node 2 —
// all in one World. Per-source FIFO must hold on every channel regardless
// of which backend carries it, and each backend's notification counter must
// account for exactly its own traffic.
// ---------------------------------------------------------------------------

TEST(TransportHeterogeneous, ThreeFabricFifoAndMetrics) {
  constexpr int kRanks = 6;
  constexpr int kMsgs = 8;
  WorldParams wp;
  wp.fabric.ranks_per_node = 2;  // nodes {0,1} {2,3} {4,5}
  wp.fabric.route = [](int a, int b) {
    return (a <= 1 && b <= 1) ? net::BackendKind::kRamc
                              : net::BackendKind::kVerbs;
  };
  World world(kRanks, wp);
  // tags_seen[src][i]: i-th notification tag rank 0 matched from src.
  std::array<std::vector<int>, kRanks> tags_seen;
  bool data_ok = true;
  world.run([&](Rank& self) {
    auto win = self.win_allocate(kRanks * kMsgs * 8, 1);
    self.barrier();
    if (self.id() == 0) {
      // One wildcard-tag request per producer; per-source arrival order is
      // the per-channel FIFO order, so tags must come out 0,1,2,...
      for (int src = 1; src < kRanks; ++src) {
        auto req = self.na().notify_init(
            *win, na::MatchSpec{src, na::kAnyTag}, 1);
        for (int i = 0; i < kMsgs; ++i) {
          self.na().start(req);
          na::NaStatus st;
          self.na().wait(req, &st);
          tags_seen[static_cast<std::size_t>(src)].push_back(st.tag);
        }
        self.na().free(req);
      }
      const double* slots = reinterpret_cast<const double*>(win->base());
      for (int src = 1; src < kRanks; ++src)
        for (int i = 0; i < kMsgs; ++i)
          if (slots[(src - 1) * kMsgs + i] != src * 100.0 + i)
            data_ok = false;
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        const double v = self.id() * 100.0 + i;
        const std::uint64_t disp =
            static_cast<std::uint64_t>((self.id() - 1) * kMsgs + i) * 8;
        self.na().put_notify(*win, na::as_bytes(&v, 8), 0, disp, i);
        win->flush(0);
      }
    }
    self.barrier();
  });
  EXPECT_TRUE(data_ok);
  for (int src = 1; src < kRanks; ++src) {
    ASSERT_EQ(tags_seen[static_cast<std::size_t>(src)].size(),
              static_cast<std::size_t>(kMsgs));
    for (int i = 0; i < kMsgs; ++i)
      EXPECT_EQ(tags_seen[static_cast<std::size_t>(src)][i], i)
          << "FIFO violated on channel " << src << " -> 0";
  }
  // Backend-tagged notification counters at the consumer: rank 1 is
  // intra-node (shm), ranks 2-3 arrive via RAMC, ranks 4-5 via verbs. The
  // Aries family is not even registered in this route.
  obs::Registry* reg = world.metrics();
  ASSERT_NE(reg, nullptr);
  EXPECT_EQ(reg->counter_value("net.shm_notifs", 0), 1u * kMsgs);
  EXPECT_EQ(reg->counter_value("net.ramc_notifs", 0), 2u * kMsgs);
  EXPECT_EQ(reg->counter_value("net.verbs_notifs", 0), 2u * kMsgs);
  EXPECT_EQ(reg->counter_value("net.aries_notifs", 0), 0u);
  // And the fabric-wide notification counter sees every one of them.
  EXPECT_EQ(world.fabric().counters().notifications,
            static_cast<std::uint64_t>((kRanks - 1) * kMsgs));
}

// ---------------------------------------------------------------------------
// Per-backend LogGP decomposition: the msgtrace telescoping identity
// (cat_sum == end-to-end latency) must hold for RAMC's two-leg counting
// notifications and verbs write-with-immediate exactly as it does for
// Aries CQEs.
// ---------------------------------------------------------------------------

TEST(TransportHeterogeneous, MsgTraceIdentityHoldsPerBackend) {
  WorldParams wp;
  wp.fabric.ranks_per_node = 2;
  wp.fabric.route = [](int a, int b) {
    return (a <= 1 && b <= 1) ? net::BackendKind::kRamc
                              : net::BackendKind::kVerbs;
  };
  World world(6, wp);
  world.enable_msgtrace();
  world.run([](Rank& self) {
    auto win = self.win_allocate(1 << 16, 1);
    self.barrier();
    if (self.id() == 0) {
      auto req =
          self.na().notify_init(*win, na::MatchSpec::any(), 3 * 5);
      self.na().start(req);
      self.na().wait(req);
      self.na().free(req);
    } else {
      // Three sizes per producer: small (RAMC IDC / shm inline), medium,
      // and large (RAMC DMA lane) so both lanes of the two-lane backend
      // get decomposed.
      std::vector<double> buf(1024, 1.5);
      const std::size_t sizes[3] = {8, 512, 4096};
      for (int i = 0; i < 3; ++i) {
        self.na().put_notify(*win, na::as_bytes(buf.data(), sizes[i]), 0,
                             static_cast<std::uint64_t>(self.id()) * 8192,
                             i);
        win->flush(0);
      }
    }
    self.barrier();
  });
  int checked = 0;
  for (const auto& m : world.msgtrace()->summarize()) {
    if (!m.complete) continue;
    EXPECT_EQ(m.cat_sum(), m.latency()) << "msg " << m.id;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

// ---------------------------------------------------------------------------
// Guard rails.
// ---------------------------------------------------------------------------

TEST(TransportRouting, ZeroRanksPerNodeIsFatal) {
  WorldParams wp;
  wp.fabric.ranks_per_node = 0;
  EXPECT_DEATH({ World world(2, wp); }, "ranks_per_node");
}

TEST(TransportRouting, ShmForInterNodePairIsFatal) {
  WorldParams wp;
  wp.fabric.ranks_per_node = 1;
  wp.fabric.route = [](int, int) { return net::BackendKind::kShm; };
  EXPECT_DEATH({ World world(2, wp); }, "shm backend");
}
