#!/usr/bin/env python3
"""Application-benchmark regression gate for CI.

Compares fresh fig1_stencil_strong / fig5_cholesky NARMA_JSON exports
against the committed baseline (bench/BENCH_apps.json):

  * every baseline row (matched by artifact + the "ranks" column) must keep
    its host wall_ms <= baseline * (1 + tolerance). Wall-clock is noisy on
    shared runners, so the default tolerance is deliberately generous (60%)
    and rows whose baseline wall_ms is below --min-wall-ms are printed for
    information only;
  * every current row must report verified / residual ok = "yes" — a
    correctness failure in the apps is a hard gate regardless of timing.

Multiple current files may be given; tables are matched across all of them
by their "artifact" name.

Exit status 0 on pass, 1 on any violation, 2 on malformed input.
"""

import argparse
import json
import sys

GATED_ARTIFACTS = ("Figure 1", "Figure 5")


def load_tables(paths):
    """Returns {artifact: (headers, rows)} across all narma.bench.v1 docs."""
    tables = {}
    for path in paths:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        if doc.get("schema") != "narma.bench.v1":
            raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
        for table in doc.get("tables", []):
            art = table.get("artifact")
            if art in GATED_ARTIFACTS:
                tables[art] = (table["headers"], table["rows"])
    return tables


def column(headers, *names):
    for name in names:
        if name in headers:
            return headers.index(name)
    raise ValueError(f"no column {names} in {headers}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed bench/BENCH_apps.json")
    ap.add_argument("current", nargs="+",
                    help="NARMA_JSON exports from this run")
    ap.add_argument("--tolerance", type=float, default=0.60,
                    help="allowed fractional wall-clock growth per row")
    ap.add_argument("--min-wall-ms", type=float, default=5.0,
                    help="baseline rows faster than this are informational")
    args = ap.parse_args()

    try:
        base = load_tables([args.baseline])
        cur = load_tables(args.current)
    except (OSError, ValueError, KeyError, IndexError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    ok = True
    for art in GATED_ARTIFACTS:
        if art not in base:
            print(f"error: baseline lacks table {art!r}", file=sys.stderr)
            ok = False
            continue
        if art not in cur:
            print(f"error: current run lacks table {art!r}", file=sys.stderr)
            ok = False
            continue
        bh, brows = base[art]
        ch, crows = cur[art]
        try:
            b_ranks, b_wall = column(bh, "ranks"), column(bh, "wall_ms")
            c_ranks, c_wall = column(ch, "ranks"), column(ch, "wall_ms")
            c_ok = column(ch, "verified", "residual ok")
        except ValueError as e:
            print(f"error: {art}: {e}", file=sys.stderr)
            ok = False
            continue
        cur_by_ranks = {row[c_ranks]: row for row in crows}
        for brow in brows:
            ranks = brow[b_ranks]
            crow = cur_by_ranks.get(ranks)
            if crow is None:
                print(f"error: {art}: current run has no row for "
                      f"ranks={ranks}", file=sys.stderr)
                ok = False
                continue
            base_ms = float(brow[b_wall])
            cur_ms = float(crow[c_wall])
            ceiling = base_ms * (1.0 + args.tolerance)
            gated = base_ms >= args.min_wall_ms
            verdict = ("ok" if cur_ms <= ceiling else
                       "REGRESSION" if gated else
                       "above ceiling (info only)")
            print(f"{art}  ranks {ranks:>3s}  baseline {base_ms:8.1f} ms  "
                  f"current {cur_ms:8.1f} ms  ceiling {ceiling:8.1f}  "
                  f"{verdict}")
            if gated and cur_ms > ceiling:
                ok = False
            if crow[c_ok] != "yes":
                print(f"{art}  ranks {ranks:>3s}  VERIFICATION FAILED "
                      f"({crow[c_ok]})")
                ok = False

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
