#!/usr/bin/env python3
"""Engine-throughput regression gate for CI.

Compares a fresh micro_engine NARMA_JSON export against the committed
baseline (bench/BENCH_engine.json):

  * every (queue, events) row with events >= --min-events must keep its
    Mevents/s >= (1 - tolerance) of the baseline row (default tolerance 30%).
    Smaller rows finish in well under a millisecond and are printed for
    information only — a single scheduler hiccup swings them by 2x;
  * the calendar/legacy events/sec ratio at the largest event count in the
    *current* run must stay >= --min-speedup (default 2.0), the PR's
    headline acceptance bar.

Exit status 0 on pass, 1 on any violation, 2 on malformed input.
"""

import argparse
import json
import sys


def load_throughput(path):
    """Returns {(queue, events): mevents_per_sec} from a narma.bench.v1 doc."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "narma.bench.v1":
        raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
    for table in doc.get("tables", []):
        if table.get("artifact") != "micro_engine":
            continue
        headers = table["headers"]
        qi = headers.index("queue")
        ei = headers.index("events")
        mi = headers.index("Mevents/s")
        return {
            (row[qi], int(row[ei])): float(row[mi]) for row in table["rows"]
        }
    raise ValueError(f"{path}: no micro_engine table")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed bench/BENCH_engine.json")
    ap.add_argument("current", help="NARMA_JSON export from this run")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional events/sec regression per row")
    ap.add_argument("--min-speedup", type=float, default=2.0,
                    help="required calendar/legacy ratio at the largest size")
    ap.add_argument("--min-events", type=int, default=100000,
                    help="rows below this event count are informational only")
    args = ap.parse_args()

    try:
        base = load_throughput(args.baseline)
        cur = load_throughput(args.current)
    except (OSError, ValueError, KeyError, IndexError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    ok = True
    for key, base_mps in sorted(base.items()):
        queue, events = key
        cur_mps = cur.get(key)
        if cur_mps is None:
            # Row counts differ when NARMA_SCALE changes the sweep; that is
            # a configuration error for the gate, not a perf regression.
            print(f"error: current run has no row for {queue}/{events}",
                  file=sys.stderr)
            ok = False
            continue
        floor = base_mps * (1.0 - args.tolerance)
        gated = events >= args.min_events
        verdict = ("ok" if cur_mps >= floor else
                   "REGRESSION" if gated else "below floor (info only)")
        print(f"{queue:8s} {events:>10d}  baseline {base_mps:8.2f}  "
              f"current {cur_mps:8.2f}  floor {floor:8.2f}  {verdict}")
        if gated and cur_mps < floor:
            ok = False

    largest = max((e for (_, e) in cur), default=0)
    leg = cur.get(("legacy", largest))
    cal = cur.get(("calendar", largest))
    if leg and cal:
        ratio = cal / leg
        verdict = "ok" if ratio >= args.min_speedup else "TOO SLOW"
        print(f"calendar/legacy at {largest} events: {ratio:.2f}x "
              f"(required {args.min_speedup:.2f}x)  {verdict}")
        if ratio < args.min_speedup:
            ok = False
    else:
        print("error: current run lacks both queues at the largest size",
              file=sys.stderr)
        ok = False

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
