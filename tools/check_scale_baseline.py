#!/usr/bin/env python3
"""Rank-scaling regression gate for CI (the fiber-engine PR's headline).

Compares a fresh scale_sweep NARMA_JSON export against the committed
baseline (bench/BENCH_scale.json):

  * every (app, ranks) row with ranks >= --min-ranks must keep its
    Mevents/s >= (1 - tolerance) of the baseline row (default tolerance
    30%). Smaller rows finish in a few milliseconds and are printed for
    information only;
  * every row's peak RSS must stay <= --rss-factor (default 2.0) times the
    baseline row — memory scaling is the point of the fiber engine, and a
    reintroduced O(ranks^2) table shows up here long before it shows up in
    wall time;
  * every row of the *current* run must finish under --max-wall-ms
    (default 5 minutes): 4096 simulated ranks must stay interactive on one
    core, not merely terminate.

Observability-cost gate (DESIGN.md §14): when the current run carries the
stencil_obs0 / stencil_obs pair, the --obs-* flags compare the two rows of
the *same* run (no committed baseline, so host speed cancels out): at every
gated rank count the full aggregate observability stack must cost at most
--obs-wall-factor in wall clock and --obs-rss-delta-mib of extra RSS over
the observability-off row.

Exit status 0 on pass, 1 on any violation, 2 on malformed input.
"""

import argparse
import json
import sys


def load_rows(path):
    """Returns {(app, ranks): (meps, rss_mib, wall_ms)} from a
    narma.bench.v1 doc, merging every scale_sweep table in the file."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "narma.bench.v1":
        raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
    rows = {}
    for table in doc.get("tables", []):
        if table.get("artifact") != "scale_sweep":
            continue
        headers = table["headers"]
        ai = headers.index("app")
        ri = headers.index("ranks")
        mi = headers.index("Mevents/s")
        si = headers.index("peak RSS MiB")
        wi = headers.index("wall ms")
        for row in table["rows"]:
            rows[(row[ai], int(row[ri]))] = (
                float(row[mi]), float(row[si]), float(row[wi]))
    if not rows:
        raise ValueError(f"{path}: no scale_sweep table")
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed bench/BENCH_scale.json")
    ap.add_argument("current", help="NARMA_JSON export from this run")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional events/sec regression per row")
    ap.add_argument("--rss-factor", type=float, default=2.0,
                    help="allowed peak-RSS growth factor per row")
    ap.add_argument("--max-wall-ms", type=float, default=300000.0,
                    help="hard wall-clock ceiling per current row")
    ap.add_argument("--min-ranks", type=int, default=256,
                    help="rows below this rank count are informational only")
    ap.add_argument("--obs-app", default=None,
                    help="app name of the observability-on rows "
                         "(e.g. stencil_obs); enables the obs-cost gate")
    ap.add_argument("--obs-base-app", default="stencil_obs0",
                    help="app name of the observability-off rows")
    ap.add_argument("--obs-wall-factor", type=float, default=1.10,
                    help="allowed wall-clock factor of obs-on over obs-off")
    ap.add_argument("--obs-rss-delta-mib", type=float, default=32.0,
                    help="allowed extra peak RSS (MiB) of obs-on over "
                         "obs-off")
    ap.add_argument("--obs-min-ranks", type=int, default=4096,
                    help="obs rows below this rank count are informational "
                         "only (small runs are noise-dominated)")
    args = ap.parse_args()

    try:
        base = load_rows(args.baseline)
        cur = load_rows(args.current)
    except (OSError, ValueError, KeyError, IndexError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    ok = True
    for key, (base_meps, base_rss, _) in sorted(base.items()):
        app, ranks = key
        if key not in cur:
            print(f"error: current run has no row for {app}/{ranks}",
                  file=sys.stderr)
            ok = False
            continue
        cur_meps, cur_rss, cur_wall = cur[key]
        gated = ranks >= args.min_ranks
        floor = base_meps * (1.0 - args.tolerance)
        ceiling = base_rss * args.rss_factor

        verdict = "ok"
        if cur_meps < floor:
            verdict = "REGRESSION (events/s)" if gated \
                else "below floor (info only)"
            ok = ok and not gated
        if cur_rss > ceiling:
            verdict = "REGRESSION (RSS)"
            ok = False
        if cur_wall > args.max_wall_ms:
            verdict = "REGRESSION (wall clock)"
            ok = False
        print(f"{app:8s} {ranks:>5d}  Mev/s {cur_meps:6.2f} "
              f"(floor {floor:5.2f})  RSS {cur_rss:7.1f} MiB "
              f"(ceiling {ceiling:7.1f})  wall {cur_wall:9.1f} ms  {verdict}")

    if args.obs_app:
        on_rows = {r: v for (a, r), v in cur.items() if a == args.obs_app}
        off_rows = {r: v for (a, r), v in cur.items()
                    if a == args.obs_base_app}
        if not on_rows or not off_rows:
            print(f"error: current run lacks {args.obs_app}/"
                  f"{args.obs_base_app} rows for the obs-cost gate",
                  file=sys.stderr)
            ok = False
        for ranks in sorted(on_rows):
            if ranks not in off_rows:
                print(f"error: no {args.obs_base_app} row at {ranks} ranks",
                      file=sys.stderr)
                ok = False
                continue
            _, on_rss, on_wall = on_rows[ranks]
            _, off_rss, off_wall = off_rows[ranks]
            gated = ranks >= args.obs_min_ranks
            factor = on_wall / off_wall if off_wall > 0 else float("inf")
            delta = on_rss - off_rss
            verdict = "ok" if gated else "info only"
            if factor > args.obs_wall_factor:
                verdict = "OBS REGRESSION (wall)" if gated \
                    else "over wall factor (info only)"
                ok = ok and not gated
            if delta > args.obs_rss_delta_mib and gated:
                verdict = "OBS REGRESSION (RSS)"
                ok = False
            print(f"obs-cost {ranks:>5d}  wall x{factor:5.3f} "
                  f"(limit x{args.obs_wall_factor:.2f})  "
                  f"RSS +{delta:6.1f} MiB "
                  f"(limit +{args.obs_rss_delta_mib:.1f})  {verdict}")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
