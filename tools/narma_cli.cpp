// narma_cli — experiment driver.
//
// Runs the paper's workloads with command-line parameters, without editing
// benchmark sources:
//
//   narma_cli pingpong --scheme=na --ranks=2 --bytes=8 --reps=100
//   narma_cli stencil  --variant=na --ranks=16 --rows=512 --cols=2048
//   narma_cli tree     --variant=na --ranks=64 --arity=16 --elems=8
//   narma_cli cholesky --variant=mp --ranks=8 --nt=24 --b=32 [--trace=f.json]
//
// Every subcommand prints one result line (plus the trace/metrics files if
// asked), suitable for scripting sweeps. `report` post-processes those
// files: per-category virtual-time breakdowns, top-k spans, and per-rank
// busy fractions.
#include <algorithm>
#include <cstdio>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "apps/cholesky.hpp"
#include "apps/stencil.hpp"
#include "apps/tree.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "narma/narma.hpp"

namespace {

using namespace narma;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  std::vector<std::string> positional;

  long get(const std::string& key, long fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stol(it->second);
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) != 0) {
      a.positional.push_back(std::move(s));
      continue;
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos) {
      a.kv[s.substr(2)] = "1";
    } else {
      a.kv[s.substr(2, eq - 2)] = s.substr(eq + 1);
    }
  }
  return a;
}

int usage() {
  std::fputs(
      "usage: narma_cli <command> [--key=value ...]\n"
      "\n"
      "commands:\n"
      "  pingpong  --scheme=na|mp|os --ranks=N --bytes=B --reps=R\n"
      "            [--intranode]\n"
      "  stencil   --variant=na|mp|fence|pscw --ranks=N --rows=R --cols=C\n"
      "            --iters=I [--ft ...]\n"
      "  tree      --variant=na|mp|pscw|vendor --ranks=N --arity=K\n"
      "            --elems=E --reps=R [--ft ...]\n"
      "  cholesky  --variant=na|mp|os --ranks=N --nt=T --b=B [--gflops=G]\n"
      "  report    [--trace=FILE] [--metrics=FILE] [--top=N]\n"
      "            summarize a recorded run: per-category virtual time\n"
      "            (with p50/p95 span durations), longest spans, per-rank\n"
      "            busy fractions, host-time phase attribution\n"
      "            (obs.phase_* gauges from --profile runs), per-backend\n"
      "            notification + drain-cost rows, histogram percentiles\n"
      "  timeline  --timeseries=FILE [--journal=FILE] [--perfetto=FILE]\n"
      "            [--top=N]\n"
      "            analyze a flight-recorder dump: per-window rank activity,\n"
      "            busiest counter families, model-residual rows, flagged\n"
      "            anomalies; --perfetto writes counter tracks for Perfetto\n"
      "  critpath  --msgtrace=FILE [--top=N]\n"
      "            analyze a causal message trace: critical-path category\n"
      "            breakdown, per-rank share, slowest messages, per-\n"
      "            category latency statistics\n"
      "  diff      <a.json> <b.json> [--top=N]\n"
      "            compare two metrics dumps (narma.metrics.v1 or .v2):\n"
      "            per-family reduced values, absolute + relative deltas,\n"
      "            top regressions, families added/removed\n"
      "\n"
      "common:     [--transport=aries|ramc|verbs]  inter-node backend\n"
      "                               (default aries; or env NARMA_TRANSPORT)\n"
      "            [--trace=FILE]     write a Chrome trace of the run\n"
      "            [--metrics=FILE]   write the metrics registry dump\n"
      "            [--msgtrace=FILE]  write the causal message trace\n"
      "            [--msgtrace-sample=N]  trace every Nth message (default 1)\n"
      "            [--timeseries=FILE]  record + write the flight-recorder\n"
      "                               time-series dump (narma.timeseries.v1)\n"
      "            [--timeseries-window-us=N]  snapshot cadence (default 100)\n"
      "            [--profile]        host-time phase profiling; results land\n"
      "                               in the metrics dump as obs.phase_*\n"
      "            [--journal=FILE]   write the anomaly journal\n"
      "                               (narma.journal.v1)\n"
      "            [--obs=dense|aggregate]  registry layout (NARMA_OBS);\n"
      "                               aggregate = O(shards) cells per family\n"
      "                               + top-k outliers + sampled ranks\n"
      "            [--obs-shards=N] [--obs-outlier-k=N]\n"
      "            [--obs-sample-ranks=N] [--obs-gauge-rank-limit=N]\n"
      "            [--journal-cap=N]  aggregate-mode / journal knobs\n"
      "\n"
      "fault tolerance (stencil + tree, NotifiedAccess variant only):\n"
      "            [--ft]                   run through the recovery manager\n"
      "            [--ft-fail-rate=R]       per-(rank,epoch) fail-stop rate\n"
      "            [--ft-max-fails=N]       fail-stop budget (default 1)\n"
      "            [--ft-interval=E]        checkpoint every E epochs\n"
      "            [--ft-partner-offset=K]  checkpoint partner (rank+K)%%n\n"
      "            [--ft-restart-us=T]      victim downtime before rejoin\n"
      "            [--ft-min-fail-epoch=E]  earliest epoch the plan fires\n"
      "            [--ft-log-cap=N]         notification-log bound per rank\n"
      "            [--ft-no-trim]           keep logs across checkpoints\n"
      "            [--ft-no-recover]        victims stay down (crash mode)\n"
      "            env NARMA_FT_* overrides any of these (see README)\n",
      stderr);
  return 2;
}

/// Applies the --transport flag: selects the inter-node backend for every
/// channel (intra-node stays on shm). Mirrors the NARMA_TRANSPORT env knob.
void apply_transport(WorldParams& wp, const Args& a) {
  const std::string t = a.get("transport", "");
  if (t.empty()) return;
  if (t == "aries")
    wp.fabric.inter_node = net::BackendKind::kAries;
  else if (t == "ramc")
    wp.fabric.inter_node = net::BackendKind::kRamc;
  else if (t == "verbs")
    wp.fabric.inter_node = net::BackendKind::kVerbs;
  else
    NARMA_FATAL("unknown --transport value") << " \"" << t << '"';
}

/// Applies the aggregate-observability flags. Mirrors the NARMA_OBS* env
/// knobs; a set env var still wins (resolve_params reads env last), so
/// sweeps driven by either mechanism behave the same.
void apply_obs_params(WorldParams& wp, const Args& a) {
  const std::string mode = a.get("obs", "");
  if (mode == "dense")
    wp.obs.obs_mode = obs::ObsMode::kDense;
  else if (mode == "aggregate")
    wp.obs.obs_mode = obs::ObsMode::kAggregate;
  else if (!mode.empty())
    NARMA_FATAL("unknown --obs value") << " \"" << mode << '"';
  if (a.kv.count("obs-shards"))
    wp.obs.obs_shards = static_cast<int>(a.get("obs-shards", 0));
  if (a.kv.count("obs-outlier-k"))
    wp.obs.outlier_k = static_cast<int>(a.get("obs-outlier-k", 0));
  if (a.kv.count("obs-sample-ranks"))
    wp.obs.sample_ranks = static_cast<int>(a.get("obs-sample-ranks", 0));
  if (a.kv.count("obs-gauge-rank-limit"))
    wp.obs.perfetto_gauge_rank_limit =
        static_cast<int>(a.get("obs-gauge-rank-limit", 0));
  if (a.kv.count("journal-cap"))
    wp.obs.journal_capacity =
        static_cast<std::size_t>(std::max(0L, a.get("journal-cap", 0)));
}

/// Applies the --ft* flags onto an app's recovery params (and the fail plan
/// onto the world's fault params), then layers the NARMA_FT_* env on top —
/// the same flags-then-env precedence every other knob here follows.
/// Returns whether the ft driver is enabled.
bool apply_ft(WorldParams& wp, ft::FtParams& p, const Args& a) {
  if (a.kv.count("ft")) p.enabled = true;
  if (a.kv.count("ft-interval"))
    p.ckpt_interval = static_cast<int>(a.get("ft-interval", 0));
  if (a.kv.count("ft-partner-offset"))
    p.partner_offset = static_cast<int>(a.get("ft-partner-offset", 0));
  if (a.kv.count("ft-restart-us"))
    p.restart = us(static_cast<double>(a.get("ft-restart-us", 0)));
  if (a.kv.count("ft-min-fail-epoch"))
    p.min_fail_epoch =
        static_cast<std::uint64_t>(a.get("ft-min-fail-epoch", 0));
  if (a.kv.count("ft-log-cap"))
    p.log_capacity = static_cast<std::size_t>(a.get("ft-log-cap", 0));
  if (a.kv.count("ft-no-trim")) p.eager_trim = false;
  if (a.kv.count("ft-no-recover")) p.recover = false;
  if (a.kv.count("ft-fail-rate"))
    wp.fabric.faults.fail_rate = std::stod(a.get("ft-fail-rate", "0"));
  if (a.kv.count("ft-max-fails"))
    wp.fabric.faults.max_fails = static_cast<int>(a.get("ft-max-fails", 1));
  p = ft::FtParams::from_env(p);
  return p.enabled;
}

/// One-line recovery summary after an ft run: the victim's stats carry the
/// recovery time, any rank's carry the plan-wide victim/checkpoint view.
void print_ft_summary(const char* app, const ft::FtStats& victim,
                      const ft::FtStats& rank0) {
  const ft::FtStats& s = victim.fails > 0 ? victim : rank0;
  std::printf(
      "%s-ft fails=%llu victim=%d restored_epoch=%llu recovery_us=%.2f "
      "ckpts=%llu ckpt_kib=%.1f replay=%llu dupes=%llu\n",
      app, static_cast<unsigned long long>(s.fails), s.victim,
      static_cast<unsigned long long>(s.restored_epoch),
      to_us(s.recovery_time),
      static_cast<unsigned long long>(rank0.ckpts),
      static_cast<double>(rank0.ckpt_bytes) / 1024.0,
      static_cast<unsigned long long>(s.replay_applied),
      static_cast<unsigned long long>(s.replay_dupes));
}

/// Enables the observability sinks a run asked for (call before run()).
void enable_observability(World& world, const Args& a) {
  if (a.kv.count("trace")) world.enable_tracing();
  if (a.kv.count("msgtrace"))
    world.enable_msgtrace(
        static_cast<std::uint64_t>(a.get("msgtrace-sample", 0)));
  // Profiler before recorder: the recorder's probe charges itself to the
  // obs phase only when the profiler already exists.
  if (a.kv.count("profile")) world.enable_profiling();
  if (a.kv.count("timeseries"))
    world.enable_timeseries(
        us(static_cast<Time>(a.get("timeseries-window-us", 0))));
}

/// Writes the requested artifacts of a finished run (trace + metrics +
/// msgtrace).
void dump_artifacts(World& world, const Args& a) {
  if (a.kv.count("trace")) world.dump_trace(a.get("trace", "trace.json"));
  if (a.kv.count("metrics"))
    world.dump_metrics(a.get("metrics", "metrics.json"));
  if (a.kv.count("msgtrace"))
    world.dump_msgtrace(a.get("msgtrace", "msgtrace.json"));
  if (a.kv.count("timeseries"))
    world.dump_timeseries(a.get("timeseries", "timeseries.json"));
  if (a.kv.count("journal"))
    world.dump_journal(a.get("journal", "journal.json"));
}

// --- report ------------------------------------------------------------------

/// Prints the obs self-cost line shared by both schema paths: the registry
/// footprint gauge plus the journal depth, when the run recorded them.
void print_obs_footprint(double registry_bytes, double journal_depth) {
  if (registry_bytes <= 0 && journal_depth <= 0) return;
  std::printf("\nobs self-cost: registry ~%.1f KiB, journal depth %lld\n",
              registry_bytes / 1024.0,
              static_cast<long long>(journal_depth));
}

/// Aggregate-mode (narma.metrics.v2) sections of `report`: whole-family
/// reductions per kind, top-k outlier ranks, and the sampled-rank busy
/// table that replaces the dense per-rank one.
int report_metrics_v2(const json::Value& doc, const std::string& path) {
  const json::Array& fams = doc["metrics"].as_array();
  std::printf(
      "\naggregate metrics %s: %d ranks, %d shards, %zu sampled ranks, "
      "outlier_k=%lld, %zu families\n",
      path.c_str(), static_cast<int>(doc.number_or("nranks", 0)),
      static_cast<int>(doc.number_or("shards", 0)),
      doc["sample_ranks"].as_array().size(),
      static_cast<long long>(doc.number_or("outlier_k", 0)), fams.size());

  auto find_fam = [&](const std::string& name) -> const json::Value& {
    static const json::Value kNull;
    for (const json::Value& fam : fams)
      if (fam.string_or("name", "") == name) return fam;
    return kNull;
  };

  // Whole-family reductions, one table per kind. These are exact — shard
  // cells plus sampled cells partition every update (see obs/metrics.hpp).
  Table c_table({"counter", "sum", "active_ranks", "max_rank_total"});
  Table g_table({"gauge", "last", "high_water"});
  Table h_table({"histogram", "count", "p50", "p90", "p99", "max"});
  bool any_c = false, any_g = false, any_h = false;
  for (const json::Value& fam : fams) {
    const std::string kind = fam.string_or("kind", "");
    const json::Value& ag = fam["aggregate"];
    if (kind == "counter") {
      any_c = true;
      c_table.add_row(
          {fam.string_or("name", "?"),
           Table::fmt(static_cast<long long>(ag.number_or("sum", 0))),
           Table::fmt(static_cast<long long>(ag.number_or("active_ranks", 0))),
           Table::fmt(static_cast<long long>(ag.number_or("max", 0)))});
    } else if (kind == "gauge") {
      any_g = true;
      g_table.add_row(
          {fam.string_or("name", "?"),
           Table::fmt(static_cast<long long>(ag.number_or("last", 0))),
           Table::fmt(static_cast<long long>(ag.number_or("high_water", 0)))});
    } else if (kind == "histogram") {
      any_h = true;
      h_table.add_row(
          {fam.string_or("name", "?"),
           Table::fmt(static_cast<long long>(ag.number_or("count", 0))),
           Table::fmt(ag.number_or("p50", 0)), Table::fmt(ag.number_or("p90", 0)),
           Table::fmt(ag.number_or("p99", 0)),
           Table::fmt(static_cast<long long>(ag.number_or("max", 0)))});
    }
  }
  if (any_c) {
    std::printf("\ncounters (whole-family, exact):\n");
    c_table.print();
  }
  if (any_g) {
    std::printf("\ngauges (last-wins / global high-water):\n");
    g_table.print();
  }
  if (any_h) {
    std::printf("\nhistograms (merged buckets):\n");
    h_table.print();
  }

  // Top-k outlier ranks per family (value-ordered in the dump).
  {
    Table o_table({"family", "top ranks (rank:value)"});
    bool any = false;
    for (const json::Value& fam : fams) {
      const json::Array& out = fam["outliers"].as_array();
      if (out.empty()) continue;
      any = true;
      std::string cells;
      for (const json::Value& o : out) {
        if (!cells.empty()) cells += "  ";
        cells += Table::fmt(static_cast<long long>(o.number_or("rank", -1)));
        cells += ':';
        cells += Table::fmt(static_cast<long long>(o.number_or("value", 0)));
      }
      o_table.add_row({fam.string_or("name", "?"), cells});
    }
    if (any) {
      std::printf("\noutlier retention (top-k ranks by running max):\n");
      o_table.print();
    }
  }

  // Sampled-rank busy fractions: the aggregate-mode stand-in for the dense
  // per-rank table, built from the exact cells of the sample reservoir.
  {
    const json::Value& busy = find_fam("sim.busy_ns")["sampled"];
    const json::Value& blocked = find_fam("sim.blocked_ns")["sampled"];
    const json::Value& total = find_fam("sim.total_ns")["sampled"];
    if (busy.is_array() && total.is_array() &&
        busy.as_array().size() == total.as_array().size()) {
      Table busy_table(
          {"rank", "busy_ms", "blocked_ms", "total_ms", "busy_frac"});
      const json::Array& ba = busy.as_array();
      const json::Array& ta = total.as_array();
      for (std::size_t i = 0; i < ba.size(); ++i) {
        const double b = ba[i].number_or("value", 0);
        const double w = blocked.is_array() && i < blocked.as_array().size()
                             ? blocked.as_array()[i].number_or("value", 0)
                             : 0.0;
        const double t = ta[i].number_or("value", 0);
        busy_table.add_row(
            {Table::fmt(static_cast<long long>(ba[i].number_or("rank", -1))),
             Table::fmt(b / 1e6), Table::fmt(w / 1e6), Table::fmt(t / 1e6),
             Table::fmt(t > 0 ? b / t : 0.0)});
      }
      std::printf("\nsampled-rank busy fraction:\n");
      busy_table.print();
    }
  }

  print_obs_footprint(
      find_fam("obs.registry_bytes")["aggregate"].number_or("high_water", 0),
      find_fam("obs.journal_depth")["aggregate"].number_or("high_water", 0));
  return 0;
}

/// Metrics-dump sections of `report`: per-rank busy fractions, host-time
/// phase attribution (from --profile runs), per-backend notification and
/// drain-cost rows, and interpolated histogram percentiles.
int report_metrics(const Args& a) {
  const std::string metrics_path = a.get("metrics", "metrics.json");
  const json::ParseResult m = json::parse_file(metrics_path);
  if (!m.ok) {
    std::fprintf(stderr, "report: %s: %s (offset %zu)\n", metrics_path.c_str(),
                 m.error.c_str(), m.error_pos);
    return 1;
  }
  const std::string schema = m.value.string_or("schema", "");
  if (schema == "narma.metrics.v2")
    return report_metrics_v2(m.value, metrics_path);
  if (schema != "narma.metrics.v1") {
    std::fprintf(stderr, "report: %s: unknown metrics schema '%s'\n",
                 metrics_path.c_str(), schema.c_str());
    return 1;
  }
  const int nranks = static_cast<int>(m.value.number_or("nranks", 0));
  const json::Array& fams = m.value["metrics"].as_array();
  auto per_rank_of = [&](const std::string& name) -> const json::Value& {
    static const json::Value kNull;
    for (const json::Value& fam : fams)
      if (fam.string_or("name", "") == name) return fam["per_rank"];
    return kNull;
  };
  auto rank0_value = [&](const std::string& name) -> double {
    const json::Value& pr = per_rank_of(name);
    return pr.is_array() && !pr.as_array().empty()
               ? pr.as_array()[0].number_or("value", 0)
               : 0.0;
  };

  // Per-rank busy fractions from the sim.* gauges.
  const json::Value& busy = per_rank_of("sim.busy_ns");
  const json::Value& blocked = per_rank_of("sim.blocked_ns");
  const json::Value& total = per_rank_of("sim.total_ns");
  if (!busy.is_array() || !total.is_array()) {
    std::fprintf(stderr, "report: %s has no sim.busy_ns/sim.total_ns gauges\n",
                 metrics_path.c_str());
    return 1;
  }
  Table busy_table({"rank", "busy_ms", "blocked_ms", "total_ms", "busy_frac"});
  for (int r = 0; r < nranks; ++r) {
    const double b = busy[static_cast<std::size_t>(r)].number_or("value", 0);
    const double w =
        blocked[static_cast<std::size_t>(r)].number_or("value", 0);
    const double t = total[static_cast<std::size_t>(r)].number_or("value", 0);
    busy_table.add_row({Table::fmt(static_cast<long long>(r)),
                        Table::fmt(b / 1e6), Table::fmt(w / 1e6),
                        Table::fmt(t / 1e6), Table::fmt(t > 0 ? b / t : 0.0)});
  }
  std::printf("\nper-rank busy fraction (from %s):\n", metrics_path.c_str());
  busy_table.print();

  // Host-time phase attribution (--profile runs export obs.phase_* gauges).
  // The matching/obs/plumbing split of real host wall-clock — the paper's
  // simulator-cost question, answered from the dump alone.
  const double prof_total = rank0_value("obs.profile_total_ns");
  if (prof_total > 0) {
    static const char* kPhases[] = {"engine_pop", "callback",  "rank_exec",
                                    "match",      "transfer",  "app_compute",
                                    "obs"};
    Table phase_table({"phase", "host_ms", "calls", "% of run"});
    double attributed = 0;
    for (const char* ph : kPhases) {
      const double ns_v =
          rank0_value(std::string("obs.phase_") + ph + "_ns");
      const double calls =
          rank0_value(std::string("obs.phase_") + ph + "_calls");
      attributed += ns_v;
      phase_table.add_row(
          {ph, Table::fmt(ns_v / 1e6),
           Table::fmt(static_cast<long long>(calls)),
           Table::fmt(100.0 * ns_v / prof_total, 1)});
    }
    const double unattr = rank0_value("obs.profile_unattributed_ns");
    phase_table.add_row({"(unattributed)", Table::fmt(unattr / 1e6), "-",
                         Table::fmt(100.0 * unattr / prof_total, 1)});
    phase_table.add_row({"(total)", Table::fmt(prof_total / 1e6), "-",
                         Table::fmt(100.0, 1)});
    std::printf("\nhost-time phase attribution:\n");
    phase_table.print();
    const double obs_ns = rank0_value("obs.phase_obs_ns");
    std::printf("attributed %.1f%% of host run; obs self-overhead %.2f%%\n",
                100.0 * attributed / prof_total,
                100.0 * obs_ns / prof_total);
  }

  // Per-backend notification delivery + consumer drain cost. Rows appear
  // only for backends the run's routes actually used (the registry never
  // registers the rest).
  {
    static const char* kBackends[] = {"shm", "aries", "ramc", "verbs"};
    Table be_table({"backend", "notifs", "drain_ms", "drain_ns/notif"});
    bool any = false;
    for (const char* be : kBackends) {
      const json::Value& notifs =
          per_rank_of(std::string("net.") + be + "_notifs");
      if (!notifs.is_array()) continue;
      any = true;
      double n = 0, drain_ps = 0;
      for (const json::Value& cell : notifs.as_array())
        n += cell.number_or("value", 0);
      const json::Value& drain =
          per_rank_of(std::string("net.") + be + "_drain_ps");
      if (drain.is_array())
        for (const json::Value& cell : drain.as_array())
          drain_ps += cell.number_or("value", 0);
      be_table.add_row({be, Table::fmt(static_cast<long long>(n)),
                        Table::fmt(drain_ps / 1e9),
                        Table::fmt(n > 0 ? drain_ps / 1e3 / n : 0.0)});
    }
    if (any) {
      std::printf("\nper-backend notifications (virtual drain cost):\n");
      be_table.print();
    }
  }

  // Histogram families: aggregate count plus the interpolated percentiles
  // of the busiest rank (highest count), typical-value columns for sweeps.
  {
    Table h_table({"histogram", "count", "p50", "p90", "p99", "max"});
    bool any = false;
    for (const json::Value& fam : fams) {
      if (fam.string_or("kind", "") != "histogram") continue;
      const json::Value& pr = fam["per_rank"];
      if (!pr.is_array()) continue;
      double count = 0;
      const json::Value* top = nullptr;
      for (const json::Value& cell : pr.as_array()) {
        count += cell.number_or("count", 0);
        if (!top || cell.number_or("count", 0) > top->number_or("count", 0))
          top = &cell;
      }
      if (!top || count == 0) continue;
      any = true;
      h_table.add_row({fam.string_or("name", "?"),
                       Table::fmt(static_cast<long long>(count)),
                       Table::fmt(top->number_or("p50", 0)),
                       Table::fmt(top->number_or("p90", 0)),
                       Table::fmt(top->number_or("p99", 0)),
                       Table::fmt(top->number_or("max", 0))});
    }
    if (any) {
      std::printf("\nhistogram percentiles (busiest rank):\n");
      h_table.print();
    }
  }

  // Obs self-cost gauges (rank 0 carries them in dense mode).
  {
    auto hw0 = [&](const std::string& name) -> double {
      const json::Value& pr = per_rank_of(name);
      return pr.is_array() && !pr.as_array().empty()
                 ? pr.as_array()[0].number_or("high_water", 0)
                 : 0.0;
    };
    print_obs_footprint(hw0("obs.registry_bytes"), hw0("obs.journal_depth"));
  }
  return 0;
}

int run_report(const Args& a) {
  if (!a.kv.count("trace")) {
    if (a.kv.count("metrics")) return report_metrics(a);
    std::fputs("report: --trace=FILE and/or --metrics=FILE is required\n",
               stderr);
    return 2;
  }
  const std::string trace_path = a.get("trace", "trace.json");
  // --top is the documented spelling; --topk stays as a fallback.
  const auto topk = static_cast<std::size_t>(a.get("top", a.get("topk", 10)));

  const json::ParseResult doc = json::parse_file(trace_path);
  if (!doc.ok) {
    std::fprintf(stderr, "report: %s: %s (offset %zu)\n", trace_path.c_str(),
                 doc.error.c_str(), doc.error_pos);
    return 1;
  }
  const json::Array& events = doc.value["traceEvents"].as_array();
  if (events.empty()) {
    std::fprintf(stderr, "report: %s has no traceEvents\n",
                 trace_path.c_str());
    return 1;
  }

  struct Span {
    std::string name, cat;
    int rank;
    double ts_us, dur_us;
  };
  struct CatAgg {
    std::uint64_t spans = 0;
    double total_us = 0;
    std::vector<double> durs_us;
  };
  std::vector<Span> spans;
  std::map<std::string, CatAgg> by_cat;
  std::map<int, double> rank_span_us;  // per-rank time inside spans
  std::map<int, double> rank_end_us;   // per-rank last event end
  std::uint64_t counter_events = 0;

  for (const json::Value& e : events) {
    const std::string ph = e.string_or("ph", "");
    const int rank = static_cast<int>(e.number_or("tid", 0));
    if (ph == "C") {
      ++counter_events;
      continue;
    }
    if (ph != "X") continue;
    Span s{e.string_or("name", "?"), e.string_or("cat", "?"), rank,
           e.number_or("ts", 0), e.number_or("dur", 0)};
    CatAgg& agg = by_cat[s.cat];
    ++agg.spans;
    agg.total_us += s.dur_us;
    agg.durs_us.push_back(s.dur_us);
    rank_span_us[rank] += s.dur_us;
    rank_end_us[rank] =
        std::max(rank_end_us[rank], s.ts_us + s.dur_us);
    spans.push_back(std::move(s));
  }

  double trace_end_us = 0;
  for (const auto& [r, end] : rank_end_us)
    trace_end_us = std::max(trace_end_us, end);

  std::printf("trace %s: %zu events (%zu spans, %llu counter points), "
              "end of last span at %.3f us\n",
              trace_path.c_str(), events.size(), spans.size(),
              static_cast<unsigned long long>(counter_events), trace_end_us);

  // Per-category breakdown: span time summed over all ranks; the percent
  // column is relative to (ranks x trace end), i.e. total rank-time.
  const double rank_time_us =
      trace_end_us * static_cast<double>(std::max<std::size_t>(
                         rank_end_us.size(), 1));
  Table cat_table(
      {"category", "spans", "total_ms", "p50_us", "p95_us", "% of rank-time"});
  double traced_total_us = 0;
  std::vector<double> all_durs_us;
  for (const auto& [cat, agg] : by_cat) {
    traced_total_us += agg.total_us;
    all_durs_us.insert(all_durs_us.end(), agg.durs_us.begin(),
                       agg.durs_us.end());
    cat_table.add_row({cat, Table::fmt(static_cast<std::size_t>(agg.spans)),
                       Table::fmt(agg.total_us / 1e3),
                       Table::fmt(stats::quantile(agg.durs_us, 0.50)),
                       Table::fmt(stats::quantile(agg.durs_us, 0.95)),
                       Table::fmt(rank_time_us > 0
                                      ? 100.0 * agg.total_us / rank_time_us
                                      : 0.0,
                                  1)});
  }
  cat_table.add_row({"(all)",
                     Table::fmt(spans.size()),
                     Table::fmt(traced_total_us / 1e3),
                     Table::fmt(all_durs_us.empty()
                                    ? 0.0
                                    : stats::quantile(all_durs_us, 0.50)),
                     Table::fmt(all_durs_us.empty()
                                    ? 0.0
                                    : stats::quantile(all_durs_us, 0.95)),
                     Table::fmt(rank_time_us > 0
                                    ? 100.0 * traced_total_us / rank_time_us
                                    : 0.0,
                                1)});
  std::printf("\nper-category virtual time:\n");
  cat_table.print();

  // Top-k spans by duration.
  std::sort(spans.begin(), spans.end(),
            [](const Span& x, const Span& y) { return x.dur_us > y.dur_us; });
  Table top_table({"span", "category", "rank", "start_us", "dur_us"});
  for (std::size_t i = 0; i < std::min(topk, spans.size()); ++i) {
    const Span& s = spans[i];
    top_table.add_row({s.name, s.cat, Table::fmt(static_cast<long long>(
                                          s.rank)),
                       Table::fmt(s.ts_us), Table::fmt(s.dur_us)});
  }
  std::printf("\ntop %zu spans:\n", std::min(topk, spans.size()));
  top_table.print();

  // Metrics-dump sections (busy fractions, phase attribution, backends,
  // histogram percentiles).
  if (a.kv.count("metrics")) return report_metrics(a);
  return 0;
}

// --- diff --------------------------------------------------------------------

/// One family of a metrics dump reduced to a single comparable number:
/// counters to the whole-family sum, gauges to the global high-water,
/// histograms to the total sample count. Both schemas reduce to the same
/// quantity — v1 by folding per_rank, v2 by reading the aggregate section —
/// so dense and aggregate dumps of the same run diff as equal.
struct ReducedFamily {
  std::string kind;
  double value = 0;
};

bool reduce_metrics(const json::Value& doc,
                    std::map<std::string, ReducedFamily>& out,
                    std::string& err) {
  const std::string schema = doc.string_or("schema", "");
  if (schema != "narma.metrics.v1" && schema != "narma.metrics.v2") {
    err = "unknown metrics schema '" + schema + "'";
    return false;
  }
  const bool v2 = schema == "narma.metrics.v2";
  for (const json::Value& fam : doc["metrics"].as_array()) {
    const std::string name = fam.string_or("name", "?");
    ReducedFamily red;
    red.kind = fam.string_or("kind", "?");
    if (v2) {
      const json::Value& ag = fam["aggregate"];
      red.value = red.kind == "counter" ? ag.number_or("sum", 0)
                  : red.kind == "gauge" ? ag.number_or("high_water", 0)
                                        : ag.number_or("count", 0);
    } else {
      for (const json::Value& cell : fam["per_rank"].as_array()) {
        if (red.kind == "counter")
          red.value += cell.number_or("value", 0);
        else if (red.kind == "gauge")
          red.value = std::max(red.value, cell.number_or("high_water", 0));
        else
          red.value += cell.number_or("count", 0);
      }
    }
    out[name] = std::move(red);
  }
  return true;
}

int run_diff(const Args& a) {
  if (a.positional.size() != 2) {
    std::fputs("diff: exactly two metrics dumps required: "
               "narma_cli diff <a.json> <b.json> [--top=N]\n",
               stderr);
    return 2;
  }
  const auto topk = static_cast<std::size_t>(a.get("top", 15));
  std::map<std::string, ReducedFamily> base, cur;
  for (int side = 0; side < 2; ++side) {
    const std::string& path = a.positional[static_cast<std::size_t>(side)];
    const json::ParseResult doc = json::parse_file(path);
    if (!doc.ok) {
      std::fprintf(stderr, "diff: %s: %s (offset %zu)\n", path.c_str(),
                   doc.error.c_str(), doc.error_pos);
      return 1;
    }
    std::string err;
    if (!reduce_metrics(doc.value, side ? cur : base, err)) {
      std::fprintf(stderr, "diff: %s: %s\n", path.c_str(), err.c_str());
      return 1;
    }
  }

  struct Row {
    std::string name, kind;
    double a, b, delta, rel;
  };
  std::vector<Row> rows;
  std::vector<std::string> added, removed;
  std::size_t unchanged = 0;
  for (const auto& [name, rb] : base) {
    auto it = cur.find(name);
    if (it == cur.end()) {
      removed.push_back(name);
      continue;
    }
    const double d = it->second.value - rb.value;
    if (d == 0) {
      ++unchanged;
      continue;
    }
    const double denom = std::max(std::abs(rb.value), 1.0);
    rows.push_back({name, rb.kind, rb.value, it->second.value, d,
                    d / denom});
  }
  for (const auto& [name, rc] : cur)
    if (!base.count(name)) added.push_back(name);

  std::printf(
      "diff %s -> %s: %zu families compared, %zu changed, %zu unchanged, "
      "%zu added, %zu removed\n",
      a.positional[0].c_str(), a.positional[1].c_str(),
      base.size() - removed.size(), rows.size(), unchanged, added.size(),
      removed.size());

  // Largest movers by relative delta (ties broken by absolute delta) —
  // the regression shortlist for sweep comparisons.
  std::sort(rows.begin(), rows.end(), [](const Row& x, const Row& y) {
    const double rx = std::abs(x.rel), ry = std::abs(y.rel);
    if (rx != ry) return rx > ry;
    const double dx = std::abs(x.delta), dy = std::abs(y.delta);
    if (dx != dy) return dx > dy;
    return x.name < y.name;
  });
  if (!rows.empty()) {
    Table d_table({"family", "kind", "base", "new", "delta", "delta%"});
    for (std::size_t i = 0; i < std::min(topk, rows.size()); ++i) {
      const Row& r = rows[i];
      d_table.add_row({r.name, r.kind, Table::fmt(r.a), Table::fmt(r.b),
                       Table::fmt(r.delta), Table::fmt(100.0 * r.rel, 1)});
    }
    std::printf("\ntop %zu movers (by relative delta):\n",
                std::min(topk, rows.size()));
    d_table.print();
  }
  for (const std::string& n : added)
    std::printf("added:   %s\n", n.c_str());
  for (const std::string& n : removed)
    std::printf("removed: %s\n", n.c_str());
  return 0;
}

// --- critpath ----------------------------------------------------------------

/// The latency categories of the narma.msgtrace.v1 decomposition, in the
/// same order MsgTrace emits them (see src/obs/msgtrace.hpp).
constexpr const char* kLatCats[] = {"src_overhead", "chan_queue", "gap",
                                    "ser",          "wire",       "blocked",
                                    "match",        "retry",      "local"};

int run_critpath(const Args& a) {
  if (!a.kv.count("msgtrace")) {
    std::fputs("critpath: --msgtrace=FILE is required\n", stderr);
    return 2;
  }
  const std::string path = a.get("msgtrace", "msgtrace.json");
  const auto topk = static_cast<std::size_t>(a.get("top", 10));

  const json::ParseResult doc = json::parse_file(path);
  if (!doc.ok) {
    std::fprintf(stderr, "critpath: %s: %s (offset %zu)\n", path.c_str(),
                 doc.error.c_str(), doc.error_pos);
    return 1;
  }
  if (doc.value.string_or("schema", "") != "narma.msgtrace.v1") {
    std::fprintf(stderr, "critpath: %s: unknown msgtrace schema '%s'\n",
                 path.c_str(), doc.value.string_or("schema", "").c_str());
    return 1;
  }

  const json::Array& messages = doc.value["messages"].as_array();
  std::printf(
      "msgtrace %s: %d ranks, sample_every=%lld, %lld injected / %lld "
      "sampled / %lld hop records dropped, %zu messages\n",
      path.c_str(), static_cast<int>(doc.value.number_or("nranks", 0)),
      static_cast<long long>(doc.value.number_or("sample_every", 1)),
      static_cast<long long>(doc.value.number_or("injections", 0)),
      static_cast<long long>(doc.value.number_or("sampled", 0)),
      static_cast<long long>(doc.value.number_or("dropped", 0)),
      messages.size());

  // Decomposition identity across all complete messages: per-message
  // category times must sum exactly to the end-to-end latency (all values
  // are integer picoseconds, so the check is exact).
  std::size_t complete = 0, violations = 0;
  std::map<std::string, std::vector<double>> cat_lat_us;
  struct Msg {
    std::string op;
    int src, dst;
    double bytes, lat_us;
    std::string top_cat;
    double top_cat_us;
    long long flow_id;
  };
  std::vector<Msg> msgs;
  for (const json::Value& m : messages) {
    if (!m["complete"].as_bool()) continue;
    ++complete;
    const json::Value& d = m["decomp_ps"];
    double sum_ps = 0;
    std::string top_cat = "-";
    double top_ps = -1;
    for (const char* cat : kLatCats) {
      const double v = d.number_or(cat, 0);
      sum_ps += v;
      if (v > 0) cat_lat_us[cat].push_back(v / 1e6);
      if (v > top_ps) {
        top_ps = v;
        top_cat = cat;
      }
    }
    if (sum_ps != m.number_or("latency_ps", 0)) ++violations;
    msgs.push_back({m.string_or("op", "?"),
                    static_cast<int>(m.number_or("src", -1)),
                    static_cast<int>(m.number_or("dst", -1)),
                    m.number_or("bytes", 0), m.number_or("latency_ps", 0) / 1e6,
                    top_cat, top_ps / 1e6,
                    static_cast<long long>(m.number_or("flow_id", 0))});
  }
  std::printf("decomposition identity: %zu complete messages, %zu violations%s\n",
              complete, violations, violations ? " [FAIL]" : " [ok]");

  // Critical path: category breakdown and per-rank share.
  const json::Value& cp = doc.value["critical_path"];
  const double span_ps = cp.number_or("span_ps", 0);
  std::printf("\ncritical path: %.3f us across %zu messages (t=%.3f..%.3f us)\n",
              span_ps / 1e6, cp["messages"].as_array().size(),
              cp.number_or("t_begin_ps", 0) / 1e6,
              cp.number_or("t_end_ps", 0) / 1e6);
  Table cp_table({"category", "time_us", "% of path"});
  double cp_sum_ps = 0;
  for (const char* cat : kLatCats) {
    const double v = cp["decomp_ps"].number_or(cat, 0);
    cp_sum_ps += v;
    cp_table.add_row({cat, Table::fmt(v / 1e6),
                      Table::fmt(span_ps > 0 ? 100.0 * v / span_ps : 0.0, 1)});
  }
  cp_table.add_row({"(sum)", Table::fmt(cp_sum_ps / 1e6),
                    Table::fmt(span_ps > 0 ? 100.0 * cp_sum_ps / span_ps : 0.0,
                               1)});
  cp_table.print();

  const json::Value& per_rank = cp["per_rank_ps"];
  if (per_rank.is_array() && span_ps > 0) {
    Table rank_table({"rank", "path_time_us", "% of path"});
    const json::Array& pr = per_rank.as_array();
    for (std::size_t r = 0; r < pr.size(); ++r) {
      const double v = pr[r].as_number();
      if (v <= 0) continue;
      rank_table.add_row({Table::fmt(static_cast<long long>(r)),
                          Table::fmt(v / 1e6),
                          Table::fmt(100.0 * v / span_ps, 1)});
    }
    std::printf("\ncritical-path share per rank:\n");
    rank_table.print();
  }

  // Per-category latency statistics across complete messages.
  Table stat_table({"category", "msgs", "mean_us", "p50_us", "p95_us",
                    "max_us"});
  for (const char* cat : kLatCats) {
    auto it = cat_lat_us.find(cat);
    if (it == cat_lat_us.end()) continue;
    const std::vector<double>& xs = it->second;
    stat_table.add_row({cat, Table::fmt(xs.size()),
                        Table::fmt(stats::mean(xs)),
                        Table::fmt(stats::quantile(xs, 0.50)),
                        Table::fmt(stats::quantile(xs, 0.95)),
                        Table::fmt(stats::max(xs))});
  }
  std::printf("\nper-category latency across messages:\n");
  stat_table.print();

  // Top-k slowest messages.
  std::sort(msgs.begin(), msgs.end(),
            [](const Msg& x, const Msg& y) { return x.lat_us > y.lat_us; });
  // flow_id lets the reader jump from a row to the matching Perfetto flow
  // arrow in the --trace output (same id namespace).
  Table top_table({"op", "src", "dst", "bytes", "latency_us", "dominant",
                   "dom_us", "flow_id"});
  for (std::size_t i = 0; i < std::min(topk, msgs.size()); ++i) {
    const Msg& m = msgs[i];
    top_table.add_row({m.op, Table::fmt(static_cast<long long>(m.src)),
                       Table::fmt(static_cast<long long>(m.dst)),
                       Table::fmt(static_cast<long long>(m.bytes)),
                       Table::fmt(m.lat_us), m.top_cat,
                       Table::fmt(m.top_cat_us), Table::fmt(m.flow_id)});
  }
  std::printf("\ntop %zu slowest messages:\n", std::min(topk, msgs.size()));
  top_table.print();
  return violations ? 1 : 0;
}

// --- timeline ----------------------------------------------------------------

/// Prints an anomaly-journal dump (narma.journal.v1): the bounded,
/// virtual-time-ordered record of faults, backpressure episodes, overflow
/// spills, stragglers, and model-residual flags.
int print_journal(const Args& a) {
  const std::string path = a.get("journal", "journal.json");
  const json::ParseResult doc = json::parse_file(path);
  if (!doc.ok) {
    std::fprintf(stderr, "timeline: %s: %s (offset %zu)\n", path.c_str(),
                 doc.error.c_str(), doc.error_pos);
    return 1;
  }
  if (doc.value.string_or("schema", "") != "narma.journal.v1") {
    std::fprintf(stderr, "timeline: %s: unknown journal schema '%s'\n",
                 path.c_str(), doc.value.string_or("schema", "").c_str());
    return 1;
  }
  const json::Array& records = doc.value["records"].as_array();
  std::printf(
      "\njournal %s: %lld appended, %lld dropped (capacity %lld), "
      "%zu retained\n",
      path.c_str(), static_cast<long long>(doc.value.number_or("appended", 0)),
      static_cast<long long>(doc.value.number_or("dropped", 0)),
      static_cast<long long>(doc.value.number_or("capacity", 0)),
      records.size());
  if (records.empty()) {
    std::printf("journal: clean run (no anomalies recorded)\n");
    return 0;
  }
  Table j_table({"t_us", "kind", "rank", "peer", "detail"});
  for (const json::Value& r : records)
    j_table.add_row({Table::fmt(r.number_or("t_ps", 0) / 1e6),
                     r.string_or("kind", "?"),
                     Table::fmt(static_cast<long long>(r.number_or("rank", -1))),
                     Table::fmt(static_cast<long long>(r.number_or("peer", -1))),
                     r.string_or("detail", "")});
  j_table.print();

  // Per-kind counts, the one-line health summary.
  std::map<std::string, long long> by_kind;
  for (const json::Value& r : records) ++by_kind[r.string_or("kind", "?")];
  std::string counts;
  for (const auto& [k, n] : by_kind) {
    if (!counts.empty()) counts += ", ";
    counts += k + "=" + Table::fmt(n);
  }
  std::printf("by kind: %s\n", counts.c_str());
  return 0;
}

int run_timeline(const Args& a) {
  if (!a.kv.count("timeseries")) {
    if (a.kv.count("journal")) return print_journal(a);
    std::fputs("timeline: --timeseries=FILE and/or --journal=FILE is "
               "required\n",
               stderr);
    return 2;
  }
  const std::string path = a.get("timeseries", "timeseries.json");
  const auto topk = static_cast<std::size_t>(a.get("top", 20));

  const json::ParseResult doc = json::parse_file(path);
  if (!doc.ok) {
    std::fprintf(stderr, "timeline: %s: %s (offset %zu)\n", path.c_str(),
                 doc.error.c_str(), doc.error_pos);
    return 1;
  }
  if (doc.value.string_or("schema", "") != "narma.timeseries.v1") {
    std::fprintf(stderr, "timeline: %s: unknown timeseries schema '%s'\n",
                 path.c_str(), doc.value.string_or("schema", "").c_str());
    return 1;
  }

  const json::Array& families = doc.value["families"].as_array();
  const json::Array& windows = doc.value["windows"].as_array();
  std::printf(
      "timeseries %s: %d ranks, window=%.1f us, %lld snapshots "
      "(%lld downsampling merges) -> %zu windows\n",
      path.c_str(), static_cast<int>(doc.value.number_or("nranks", 0)),
      doc.value.number_or("window_ps", 0) / 1e6,
      static_cast<long long>(doc.value.number_or("snapshots", 0)),
      static_cast<long long>(doc.value.number_or("merges", 0)),
      windows.size());

  auto family_name = [&](std::size_t idx) -> std::string {
    return idx < families.size() ? families[idx].string_or("name", "?")
                                 : "?";
  };

  // Per-window rank activity: mean busy fraction across ranks plus the
  // laggard (lowest busy fraction among active ranks). Only the last
  // --top windows are tabulated; the telescoped history stays in the JSON.
  const std::size_t first_shown =
      windows.size() > topk ? windows.size() - topk : 0;
  if (first_shown > 0)
    std::printf("(showing the last %zu of %zu windows; older ones are "
                "geometrically merged)\n",
                topk, windows.size());
  const bool aggregate =
      doc.value.string_or("obs_mode", "dense") == "aggregate";
  if (aggregate) {
    // Aggregate recorder windows carry whole-run rank sums (rank_agg) and
    // exact deltas only for the sampled ranks; the mean busy fraction is
    // the time-weighted one (busy_ps_sum / total_ps_sum).
    Table win_table({"window", "t_begin_us", "t_end_us", "merged", "cells",
                     "active", "mean_busy", "min_busy", "laggard",
                     "stragglers"});
    for (std::size_t i = first_shown; i < windows.size(); ++i) {
      const json::Value& win = windows[i];
      const json::Value& ag = win["rank_agg"];
      const double tot = ag.number_or("total_ps_sum", 0);
      win_table.add_row(
          {Table::fmt(static_cast<long long>(i)),
           Table::fmt(win.number_or("t_begin_ps", 0) / 1e6),
           Table::fmt(win.number_or("t_end_ps", 0) / 1e6),
           Table::fmt(static_cast<long long>(win.number_or("merged", 1))),
           Table::fmt(win["cells"].as_array().size()),
           Table::fmt(static_cast<long long>(ag.number_or("active", 0))),
           Table::fmt(tot > 0 ? ag.number_or("busy_ps_sum", 0) / tot : 0.0),
           Table::fmt(ag.number_or("min_busy", 0)),
           Table::fmt(static_cast<long long>(ag.number_or("min_rank", -1))),
           Table::fmt(static_cast<long long>(ag.number_or("stragglers", 0)))});
    }
    std::printf("\nper-window rank activity (aggregate):\n");
    win_table.print();
  } else {
    Table win_table({"window", "t_begin_us", "t_end_us", "merged", "cells",
                     "mean_busy", "min_busy", "laggard"});
    for (std::size_t i = first_shown; i < windows.size(); ++i) {
      const json::Value& win = windows[i];
      const json::Array& ranks = win["ranks"].as_array();
      double busy_sum = 0, busy_min = 2.0;
      long long laggard = -1;
      std::size_t active = 0;
      for (const json::Value& r : ranks) {
        const double tot = r.number_or("total_ps", 0);
        if (tot <= 0) continue;
        const double f = r.number_or("busy_ps", 0) / tot;
        busy_sum += f;
        ++active;
        if (f < busy_min) {
          busy_min = f;
          laggard = static_cast<long long>(r.number_or("rank", -1));
        }
      }
      win_table.add_row(
          {Table::fmt(static_cast<long long>(i)),
           Table::fmt(win.number_or("t_begin_ps", 0) / 1e6),
           Table::fmt(win.number_or("t_end_ps", 0) / 1e6),
           Table::fmt(static_cast<long long>(win.number_or("merged", 1))),
           Table::fmt(win["cells"].as_array().size()),
           Table::fmt(active ? busy_sum / static_cast<double>(active) : 0.0),
           Table::fmt(active ? busy_min : 0.0), Table::fmt(laggard)});
    }
    std::printf("\nper-window rank activity:\n");
    win_table.print();
  }

  // Busiest counter families by total delta across all windows and ranks.
  std::map<std::string, double> fam_totals;
  for (const json::Value& win : windows)
    for (const json::Value& c : win["cells"].as_array()) {
      const auto idx = static_cast<std::size_t>(c.number_or("family", 0));
      if (idx >= families.size()) continue;
      const std::string kind = families[idx].string_or("kind", "");
      if (kind == "counter")
        fam_totals[family_name(idx)] += c.number_or("delta", 0);
      else if (kind == "histogram")
        fam_totals[family_name(idx)] += c.number_or("delta_count", 0);
    }
  std::vector<std::pair<std::string, double>> ranked(fam_totals.begin(),
                                                     fam_totals.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    return x.second > y.second || (x.second == y.second && x.first < y.first);
  });
  Table fam_table({"family", "total over run"});
  for (std::size_t i = 0; i < std::min<std::size_t>(topk, ranked.size()); ++i)
    fam_table.add_row({ranked[i].first,
                       Table::fmt(static_cast<long long>(ranked[i].second))});
  std::printf("\nbusiest families (counters + histogram counts):\n");
  fam_table.print();

  // Model residuals: measured channel latency vs the LogGP prediction of
  // the backend that carried each sampled message, grouped per window.
  const json::Array& residuals = doc.value["residuals"].as_array();
  if (!residuals.empty()) {
    Table res_table({"window", "backend", "msgs", "model_ns", "residual_ns",
                     "max_|resid|_ns", "flag"});
    for (const json::Value& r : residuals)
      res_table.add_row(
          {Table::fmt(static_cast<long long>(r.number_or("window", 0))),
           r.string_or("backend", "?"),
           Table::fmt(static_cast<long long>(r.number_or("msgs", 0))),
           Table::fmt(r.number_or("mean_model_ps", 0) / 1e3),
           Table::fmt(r.number_or("mean_residual_ps", 0) / 1e3),
           Table::fmt(r.number_or("max_abs_residual_ps", 0) / 1e3),
           r["flagged"].as_bool() ? "FLAGGED" : ""});
    std::printf("\nmodel residuals (measured - LogGP per backend):\n");
    res_table.print();
  }

  // Flagged anomalies (stragglers, flagged residual groups).
  const json::Array& anomalies = doc.value["anomalies"].as_array();
  if (!anomalies.empty()) {
    Table an_table({"window", "kind", "rank", "detail"});
    for (const json::Value& an : anomalies)
      an_table.add_row(
          {Table::fmt(static_cast<long long>(an.number_or("window", 0))),
           an.string_or("kind", "?"),
           Table::fmt(static_cast<long long>(an.number_or("rank", -1))),
           an.string_or("detail", "")});
    std::printf("\nanomalies (%zu):\n", anomalies.size());
    an_table.print();
  } else {
    std::printf("\nanomalies: none\n");
  }

  // Perfetto counter tracks: one counter event per (family, rank) at each
  // window end, same event shape as the live Tracer's gauge tracks, plus a
  // busy-fraction track per rank.
  if (a.kv.count("perfetto")) {
    const std::string out_path = a.get("perfetto", "timeline_perfetto.json");
    std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const std::string& fields) {
      if (!first) out += ',';
      first = false;
      out += '{';
      out += fields;
      out += '}';
    };
    char buf[256];
    for (const json::Value& win : windows) {
      const double ts_us = win.number_or("t_end_ps", 0) / 1e6;
      // Aggregate windows have no dense rank array; the sampled ranks'
      // exact deltas become the busy-fraction tracks instead.
      for (const json::Value& r :
           win[aggregate ? "sampled_ranks" : "ranks"].as_array()) {
        const double tot = r.number_or("total_ps", 0);
        const auto rank = static_cast<long long>(r.number_or("rank", 0));
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"C\",\"pid\":0,\"tid\":%lld,\"name\":"
                      "\"ts.busy_frac\",\"ts\":%.3f,\"args\":{\"value\":%.17g}",
                      rank, ts_us,
                      tot > 0 ? r.number_or("busy_ps", 0) / tot : 0.0);
        emit(buf);
      }
      for (const json::Value& c : win["cells"].as_array()) {
        const auto idx = static_cast<std::size_t>(c.number_or("family", 0));
        const std::string kind =
            idx < families.size() ? families[idx].string_or("kind", "") : "";
        const double v = kind == "counter"     ? c.number_or("delta", 0)
                         : kind == "gauge"     ? c.number_or("value", 0)
                         : c.number_or("delta_count", 0);
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"C\",\"pid\":0,\"tid\":%lld,\"name\":"
                      "\"ts.%s\",\"ts\":%.3f,\"args\":{\"value\":%.17g}",
                      static_cast<long long>(c.number_or("rank", 0)),
                      family_name(idx).c_str(), ts_us, v);
        emit(buf);
      }
    }
    out += "]}";
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "timeline: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("\nwrote Perfetto counter tracks to %s\n", out_path.c_str());
  }
  if (a.kv.count("journal")) return print_journal(a);
  return 0;
}

int run_pingpong(const Args& a) {
  const int ranks = static_cast<int>(a.get("ranks", 2));
  const std::size_t bytes = static_cast<std::size_t>(a.get("bytes", 8));
  const int reps = static_cast<int>(a.get("reps", 100));
  const std::string scheme = a.get("scheme", "na");
  NARMA_CHECK(ranks == 2) << "pingpong needs exactly 2 ranks";

  WorldParams wp;
  if (a.kv.count("intranode")) wp.fabric.ranks_per_node = ranks;
  apply_transport(wp, a);
  apply_obs_params(wp, a);
  World world(2, wp);
  enable_observability(world, a);

  std::vector<double> samples;
  world.run([&](Rank& self) {
    const int partner = 1 - self.id();
    auto win = self.win_allocate(2 * bytes + 16, 1);
    std::vector<std::byte> buf(bytes, std::byte{1});
    auto req = self.na().notify_init(*win, na::MatchSpec{partner, 9}, 1);
    for (int r = 0; r < reps + 2; ++r) {
      self.barrier();
      const Time t0 = self.now();
      auto ping_pong_na = [&](bool first) {
        if (first) {
          self.na().put_notify(*win, na::as_bytes(buf.data(), bytes), partner, 0, 9);
          win->flush(partner);
          self.na().start(req);
          self.na().wait(req);
        } else {
          self.na().start(req);
          self.na().wait(req);
          self.na().put_notify(*win, na::as_bytes(buf.data(), bytes), partner, bytes, 9);
          win->flush(partner);
        }
      };
      auto ping_pong_mp = [&](bool first) {
        if (first) {
          self.send(buf.data(), bytes, partner, 9);
          self.recv(buf.data(), bytes, partner, 9);
        } else {
          self.recv(buf.data(), bytes, partner, 9);
          self.send(buf.data(), bytes, partner, 9);
        }
      };
      auto ping_pong_os = [&](bool first) {
        std::array<int, 1> grp{partner};
        if (first) {
          win->start(grp);
          win->put(buf.data(), bytes, partner, 0);
          win->complete();
          win->post(grp);
          win->wait();
        } else {
          win->post(grp);
          win->wait();
          win->start(grp);
          win->put(buf.data(), bytes, partner, bytes);
          win->complete();
        }
      };
      const bool first = self.id() == 0;
      if (scheme == "mp") {
        ping_pong_mp(first);
      } else if (scheme == "os") {
        ping_pong_os(first);
      } else {
        ping_pong_na(first);
      }
      if (self.id() == 0 && r >= 2)
        samples.push_back(to_us(self.now() - t0) / 2.0);
    }
    self.barrier();
  });
  std::printf("pingpong scheme=%s bytes=%zu reps=%d half_rtt_us=%.3f\n",
              scheme.c_str(), bytes, reps, stats::median(samples));
  dump_artifacts(world, a);
  return 0;
}

int run_stencil(const Args& a) {
  const int ranks = static_cast<int>(a.get("ranks", 4));
  apps::StencilConfig cfg;
  cfg.rows = static_cast<int>(a.get("rows", 256));
  cfg.total_cols = static_cast<int>(a.get("cols", 1024));
  cfg.iters = static_cast<int>(a.get("iters", 2));
  // Calibrated per-point compute cost in ps (0 = measure the real kernel;
  // measured runs are host-dependent, calibrated runs are bit-deterministic).
  cfg.per_point = static_cast<Time>(a.get("per-point", 0));
  const std::string v = a.get("variant", "na");
  cfg.variant = v == "mp"      ? apps::StencilVariant::kMessagePassing
                : v == "fence" ? apps::StencilVariant::kFence
                : v == "pscw"  ? apps::StencilVariant::kPscw
                               : apps::StencilVariant::kNotified;
  WorldParams wp;
  apply_transport(wp, a);
  apply_obs_params(wp, a);
  const bool ft_on = apply_ft(wp, cfg.ft, a);
  World world(ranks, wp);
  enable_observability(world, a);
  apps::StencilResult res;
  ft::FtStats victim;
  std::mutex mu;  // rank bodies run concurrently under NARMA_EXEC=threads
  world.run([&](Rank& self) {
    const auto r = apps::run_stencil(self, cfg);
    std::lock_guard<std::mutex> lock(mu);
    if (self.id() == 0) res = r;
    if (r.ft.fails > 0) victim = r.ft;
  });
  std::printf(
      "stencil variant=%s ranks=%d rows=%d cols=%d gmops=%.4f verified=%s\n",
      v.c_str(), ranks, cfg.rows, cfg.total_cols, res.gmops,
      res.verified ? "yes" : "NO");
  if (ft_on) print_ft_summary("stencil", victim, res.ft);
  dump_artifacts(world, a);
  return res.verified ? 0 : 1;
}

int run_tree(const Args& a) {
  const int ranks = static_cast<int>(a.get("ranks", 17));
  apps::TreeConfig cfg;
  cfg.arity = static_cast<int>(a.get("arity", 16));
  cfg.elems = static_cast<std::size_t>(a.get("elems", 1));
  cfg.reps = static_cast<int>(a.get("reps", 5));
  const std::string v = a.get("variant", "na");
  cfg.variant = v == "mp"       ? apps::TreeVariant::kMessagePassing
                : v == "pscw"   ? apps::TreeVariant::kPscw
                : v == "vendor" ? apps::TreeVariant::kVendorReduce
                                : apps::TreeVariant::kNotified;
  WorldParams wp;
  apply_transport(wp, a);
  apply_obs_params(wp, a);
  const bool ft_on = apply_ft(wp, cfg.ft, a);
  World world(ranks, wp);
  enable_observability(world, a);
  apps::TreeResult res;
  ft::FtStats victim;
  std::mutex mu;  // rank bodies run concurrently under NARMA_EXEC=threads
  world.run([&](Rank& self) {
    const auto r = apps::run_tree(self, cfg);
    std::lock_guard<std::mutex> lock(mu);
    if (self.id() == 0) res = r;
    if (r.ft.fails > 0) victim = r.ft;
  });
  std::printf(
      "tree variant=%s ranks=%d arity=%d elems=%zu us_per_op=%.2f "
      "verified=%s\n",
      v.c_str(), ranks, cfg.arity, cfg.elems, res.per_op_us,
      res.verified ? "yes" : "NO");
  if (ft_on) print_ft_summary("tree", victim, res.ft);
  dump_artifacts(world, a);
  return res.verified ? 0 : 1;
}

int run_cholesky(const Args& a) {
  const int ranks = static_cast<int>(a.get("ranks", 4));
  apps::CholeskyConfig cfg;
  cfg.nt = static_cast<int>(a.get("nt", 12));
  cfg.b = static_cast<int>(a.get("b", 32));
  cfg.model_gflops = static_cast<double>(a.get("gflops", 10));
  const std::string v = a.get("variant", "na");
  cfg.variant = v == "mp"   ? apps::CholeskyVariant::kMessagePassing
                : v == "os" ? apps::CholeskyVariant::kOneSided
                            : apps::CholeskyVariant::kNotified;
  WorldParams wp;
  apply_transport(wp, a);
  apply_obs_params(wp, a);
  World world(ranks, wp);
  enable_observability(world, a);
  apps::CholeskyResult res;
  world.run([&](Rank& self) {
    const auto r = apps::run_cholesky(self, cfg);
    if (self.id() == 0) res = r;
  });
  std::printf(
      "cholesky variant=%s ranks=%d nt=%d b=%d time_ms=%.3f gflops=%.3f "
      "residual=%.2e verified=%s\n",
      v.c_str(), ranks, cfg.nt, cfg.b, to_ms(res.elapsed), res.gflops,
      res.residual, res.verified ? "yes" : "NO");
  dump_artifacts(world, a);
  return res.verified ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.command == "pingpong") return run_pingpong(a);
  if (a.command == "stencil") return run_stencil(a);
  if (a.command == "tree") return run_tree(a);
  if (a.command == "cholesky") return run_cholesky(a);
  if (a.command == "report") return run_report(a);
  if (a.command == "timeline") return run_timeline(a);
  if (a.command == "critpath") return run_critpath(a);
  if (a.command == "diff") return run_diff(a);
  return usage();
}
