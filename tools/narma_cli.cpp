// narma_cli — experiment driver.
//
// Runs the paper's workloads with command-line parameters, without editing
// benchmark sources:
//
//   narma_cli pingpong --scheme=na --ranks=2 --bytes=8 --reps=100
//   narma_cli stencil  --variant=na --ranks=16 --rows=512 --cols=2048
//   narma_cli tree     --variant=na --ranks=64 --arity=16 --elems=8
//   narma_cli cholesky --variant=mp --ranks=8 --nt=24 --b=32 [--trace=f.json]
//
// Every subcommand prints one result line (plus the trace file if asked),
// suitable for scripting sweeps.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "apps/cholesky.hpp"
#include "apps/stencil.hpp"
#include "apps/tree.hpp"
#include "narma/narma.hpp"

namespace {

using namespace narma;

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;

  long get(const std::string& key, long fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::stol(it->second);
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc > 1) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) != 0) continue;
    const auto eq = s.find('=');
    if (eq == std::string::npos) {
      a.kv[s.substr(2)] = "1";
    } else {
      a.kv[s.substr(2, eq - 2)] = s.substr(eq + 1);
    }
  }
  return a;
}

int usage() {
  std::fputs(
      "usage: narma_cli <command> [--key=value ...]\n"
      "\n"
      "commands:\n"
      "  pingpong  --scheme=na|mp|os --ranks=N --bytes=B --reps=R\n"
      "            [--intranode]\n"
      "  stencil   --variant=na|mp|fence|pscw --ranks=N --rows=R --cols=C\n"
      "            --iters=I\n"
      "  tree      --variant=na|mp|pscw|vendor --ranks=N --arity=K\n"
      "            --elems=E --reps=R\n"
      "  cholesky  --variant=na|mp|os --ranks=N --nt=T --b=B [--gflops=G]\n"
      "\n"
      "common:     [--trace=FILE]  write a Chrome trace of the run\n",
      stderr);
  return 2;
}

int run_pingpong(const Args& a) {
  const int ranks = static_cast<int>(a.get("ranks", 2));
  const std::size_t bytes = static_cast<std::size_t>(a.get("bytes", 8));
  const int reps = static_cast<int>(a.get("reps", 100));
  const std::string scheme = a.get("scheme", "na");
  NARMA_CHECK(ranks == 2) << "pingpong needs exactly 2 ranks";

  WorldParams wp;
  if (a.kv.count("intranode")) wp.fabric.ranks_per_node = ranks;
  World world(2, wp);
  if (a.kv.count("trace")) world.enable_tracing();

  std::vector<double> samples;
  world.run([&](Rank& self) {
    const int partner = 1 - self.id();
    auto win = self.win_allocate(2 * bytes + 16, 1);
    std::vector<std::byte> buf(bytes, std::byte{1});
    auto req = self.na().notify_init(*win, partner, 9, 1);
    for (int r = 0; r < reps + 2; ++r) {
      self.barrier();
      const Time t0 = self.now();
      auto ping_pong_na = [&](bool first) {
        if (first) {
          self.na().put_notify(*win, buf.data(), bytes, partner, 0, 9);
          win->flush(partner);
          self.na().start(req);
          self.na().wait(req);
        } else {
          self.na().start(req);
          self.na().wait(req);
          self.na().put_notify(*win, buf.data(), bytes, partner, bytes, 9);
          win->flush(partner);
        }
      };
      auto ping_pong_mp = [&](bool first) {
        if (first) {
          self.send(buf.data(), bytes, partner, 9);
          self.recv(buf.data(), bytes, partner, 9);
        } else {
          self.recv(buf.data(), bytes, partner, 9);
          self.send(buf.data(), bytes, partner, 9);
        }
      };
      auto ping_pong_os = [&](bool first) {
        std::array<int, 1> grp{partner};
        if (first) {
          win->start(grp);
          win->put(buf.data(), bytes, partner, 0);
          win->complete();
          win->post(grp);
          win->wait();
        } else {
          win->post(grp);
          win->wait();
          win->start(grp);
          win->put(buf.data(), bytes, partner, bytes);
          win->complete();
        }
      };
      const bool first = self.id() == 0;
      if (scheme == "mp") {
        ping_pong_mp(first);
      } else if (scheme == "os") {
        ping_pong_os(first);
      } else {
        ping_pong_na(first);
      }
      if (self.id() == 0 && r >= 2)
        samples.push_back(to_us(self.now() - t0) / 2.0);
    }
    self.barrier();
  });
  std::printf("pingpong scheme=%s bytes=%zu reps=%d half_rtt_us=%.3f\n",
              scheme.c_str(), bytes, reps, stats::median(samples));
  if (a.kv.count("trace")) world.dump_trace(a.get("trace", "trace.json"));
  return 0;
}

int run_stencil(const Args& a) {
  const int ranks = static_cast<int>(a.get("ranks", 4));
  apps::StencilConfig cfg;
  cfg.rows = static_cast<int>(a.get("rows", 256));
  cfg.total_cols = static_cast<int>(a.get("cols", 1024));
  cfg.iters = static_cast<int>(a.get("iters", 2));
  const std::string v = a.get("variant", "na");
  cfg.variant = v == "mp"      ? apps::StencilVariant::kMessagePassing
                : v == "fence" ? apps::StencilVariant::kFence
                : v == "pscw"  ? apps::StencilVariant::kPscw
                               : apps::StencilVariant::kNotified;
  World world(ranks);
  if (a.kv.count("trace")) world.enable_tracing();
  apps::StencilResult res;
  world.run([&](Rank& self) {
    const auto r = apps::run_stencil(self, cfg);
    if (self.id() == 0) res = r;
  });
  std::printf(
      "stencil variant=%s ranks=%d rows=%d cols=%d gmops=%.4f verified=%s\n",
      v.c_str(), ranks, cfg.rows, cfg.total_cols, res.gmops,
      res.verified ? "yes" : "NO");
  if (a.kv.count("trace")) world.dump_trace(a.get("trace", "trace.json"));
  return res.verified ? 0 : 1;
}

int run_tree(const Args& a) {
  const int ranks = static_cast<int>(a.get("ranks", 17));
  apps::TreeConfig cfg;
  cfg.arity = static_cast<int>(a.get("arity", 16));
  cfg.elems = static_cast<std::size_t>(a.get("elems", 1));
  cfg.reps = static_cast<int>(a.get("reps", 5));
  const std::string v = a.get("variant", "na");
  cfg.variant = v == "mp"       ? apps::TreeVariant::kMessagePassing
                : v == "pscw"   ? apps::TreeVariant::kPscw
                : v == "vendor" ? apps::TreeVariant::kVendorReduce
                                : apps::TreeVariant::kNotified;
  World world(ranks);
  if (a.kv.count("trace")) world.enable_tracing();
  apps::TreeResult res;
  world.run([&](Rank& self) {
    const auto r = apps::run_tree(self, cfg);
    if (self.id() == 0) res = r;
  });
  std::printf(
      "tree variant=%s ranks=%d arity=%d elems=%zu us_per_op=%.2f "
      "verified=%s\n",
      v.c_str(), ranks, cfg.arity, cfg.elems, res.per_op_us,
      res.verified ? "yes" : "NO");
  if (a.kv.count("trace")) world.dump_trace(a.get("trace", "trace.json"));
  return res.verified ? 0 : 1;
}

int run_cholesky(const Args& a) {
  const int ranks = static_cast<int>(a.get("ranks", 4));
  apps::CholeskyConfig cfg;
  cfg.nt = static_cast<int>(a.get("nt", 12));
  cfg.b = static_cast<int>(a.get("b", 32));
  cfg.model_gflops = static_cast<double>(a.get("gflops", 10));
  const std::string v = a.get("variant", "na");
  cfg.variant = v == "mp"   ? apps::CholeskyVariant::kMessagePassing
                : v == "os" ? apps::CholeskyVariant::kOneSided
                            : apps::CholeskyVariant::kNotified;
  World world(ranks);
  if (a.kv.count("trace")) world.enable_tracing();
  apps::CholeskyResult res;
  world.run([&](Rank& self) {
    const auto r = apps::run_cholesky(self, cfg);
    if (self.id() == 0) res = r;
  });
  std::printf(
      "cholesky variant=%s ranks=%d nt=%d b=%d time_ms=%.3f gflops=%.3f "
      "residual=%.2e verified=%s\n",
      v.c_str(), ranks, cfg.nt, cfg.b, to_ms(res.elapsed), res.gflops,
      res.residual, res.verified ? "yes" : "NO");
  if (a.kv.count("trace")) world.dump_trace(a.get("trace", "trace.json"));
  return res.verified ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.command == "pingpong") return run_pingpong(a);
  if (a.command == "stencil") return run_stencil(a);
  if (a.command == "tree") return run_tree(a);
  if (a.command == "cholesky") return run_cholesky(a);
  return usage();
}
